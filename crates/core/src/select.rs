//! Preemption selection — Algorithm 1 of the paper (§3.3).
//!
//! Given a latency limit, a kernel to evict and the number of SMs needed,
//! pick **which SMs** to preempt and **how to preempt each block**, minimising
//! estimated throughput overhead subject to the latency constraint:
//!
//! 1. per block, estimate every technique's cost and keep the lowest-overhead
//!    technique that meets the latency limit;
//! 2. blocks that cannot meet the limit with any technique fall back to
//!    context switching;
//! 3. per SM, the plan's latency is the max over blocks and its overhead the
//!    sum; sort SMs by overhead and take the cheapest ones that meet the
//!    limit.
//!
//! Complexity is `O(N·T·log T + N·log N)` for `N` SMs and `T` blocks per SM,
//! as derived in the paper.

use crate::cost::{CostModel, EstimatorConfig, KernelObs, TbProgress};
use gpu_sim::{GpuConfig, SmPreemptPlan, SmSnapshot, Technique};

/// A selection request: the inputs Algorithm 1 receives from the SM
/// scheduling policy.
#[derive(Debug, Clone, Copy)]
pub struct SelectionRequest {
    /// The preemption latency constraint, cycles.
    pub limit_cycles: u64,
    /// Number of SMs to preempt.
    pub num_preempts: usize,
    /// Per-block context size of the kernel to evict, bytes.
    pub ctx_bytes_per_tb: u64,
    /// Online observations for the kernel.
    pub obs: KernelObs,
    /// Whether flushing may be considered at all. `false` models the strict
    /// idempotence condition (§4.3) for a non-idempotent kernel.
    pub flush_allowed: bool,
    /// The cost-estimator mode and risk knob. Under the default static mode
    /// any quantile carried by `obs` is ignored and drain bounds use the
    /// worst-case `max(avg + 2σ, max)` headroom; under
    /// [`EstimatorMode::Online`](crate::cost::EstimatorMode::Online) the
    /// risk-quantile bound is preferred when present.
    pub estimator: EstimatorConfig,
}

/// A chosen preemption plan for one SM.
#[derive(Debug, Clone)]
pub struct PlanForSm {
    /// The SM to preempt.
    pub sm: usize,
    /// The per-block plan to execute.
    pub plan: SmPreemptPlan,
    /// Estimated preemption latency, cycles.
    pub est_latency_cycles: u64,
    /// Estimated throughput overhead, warp instructions.
    pub est_overhead_insts: u64,
    /// One decision record per resident block — the Algorithm 1 inputs
    /// (per-technique estimates) plus the chosen technique, ready to feed to
    /// [`gpu_sim::Engine::record_decision`] for the observability event log.
    pub decisions: Vec<gpu_sim::BlockDecision>,
}

impl PlanForSm {
    /// Whether the estimate meets the request's latency limit.
    pub fn meets(&self, limit_cycles: u64) -> bool {
        self.est_latency_cycles <= limit_cycles
    }
}

/// Run Algorithm 1 over the candidate SMs (all currently running the kernel
/// to preempt). Returns up to `num_preempts` plans; when fewer SMs can meet
/// the limit than requested, the remainder is filled with the lowest-latency
/// candidates (the request must still be served).
///
/// ```
/// use chimera::cost::KernelObs;
/// use chimera::select::{select_preemptions, SelectionRequest};
/// use gpu_sim::{GpuConfig, SmSnapshot, TbSnapshotInfo, Technique};
///
/// let cfg = GpuConfig::fermi();
/// let snapshot = SmSnapshot {
///     sm: 0,
///     kernel: None,
///     blocks: vec![
///         TbSnapshotInfo { index: 0, executed_insts: 10, elapsed_cycles: 160, past_idem_point: false },
///         TbSnapshotInfo { index: 1, executed_insts: 990, elapsed_cycles: 15_840, past_idem_point: true },
///     ],
/// };
/// let req = SelectionRequest {
///     limit_cycles: cfg.us_to_cycles(15.0),
///     num_preempts: 1,
///     ctx_bytes_per_tb: 24 * 1024,
///     obs: KernelObs {
///         avg_tb_insts: Some(1000.0),
///         avg_tb_cpi: Some(16.0),
///         max_tb_insts: 1000,
///         ..KernelObs::default()
///     },
///     flush_allowed: true,
///     estimator: Default::default(),
/// };
/// let plans = select_preemptions(&cfg, &req, &[snapshot]);
/// // Figure 4's shape: the young block flushes, the nearly-done one drains.
/// assert_eq!(plans[0].plan.technique_for(0), Some(Technique::Flush));
/// assert_eq!(plans[0].plan.technique_for(1), Some(Technique::Drain));
/// ```
pub fn select_preemptions(
    cfg: &GpuConfig,
    req: &SelectionRequest,
    snapshots: &[SmSnapshot],
) -> Vec<PlanForSm> {
    let model = CostModel::new(
        cfg,
        req.ctx_bytes_per_tb,
        req.obs.for_estimator(&req.estimator),
    );
    let mut sm_plans: Vec<PlanForSm> = snapshots
        .iter()
        .filter(|s| !s.blocks.is_empty())
        .map(|s| plan_one_sm(&model, req, s))
        .collect();
    // Line 19: sort all SM costs by throughput overhead.
    sm_plans.sort_by_key(|p| (p.est_overhead_insts, p.est_latency_cycles, p.sm));
    let mut chosen = Vec::with_capacity(req.num_preempts);
    let mut rest = Vec::new();
    // Lines 20-28: take the cheapest SMs that meet the latency constraint.
    for p in sm_plans {
        if chosen.len() < req.num_preempts && p.meets(req.limit_cycles) {
            chosen.push(p);
        } else {
            rest.push(p);
        }
    }
    // Fill any shortfall with the lowest-latency leftovers.
    rest.sort_by_key(|p| (p.est_latency_cycles, p.est_overhead_insts, p.sm));
    for p in rest {
        if chosen.len() >= req.num_preempts {
            break;
        }
        chosen.push(p);
    }
    chosen
}

/// Lines 2-17: choose a technique per block on one SM.
fn plan_one_sm(model: &CostModel<'_>, req: &SelectionRequest, snap: &SmSnapshot) -> PlanForSm {
    let resident = snap.blocks.len();
    let max_executed = snap
        .blocks
        .iter()
        .map(|b| b.executed_insts)
        .max()
        .unwrap_or(0);
    // Lines 2-6: estimate every (block, technique) cost, once per block.
    let per_block: Vec<(u32, Vec<crate::cost::TbCost>)> = snap
        .blocks
        .iter()
        .map(|tb| {
            let progress = TbProgress {
                executed_insts: tb.executed_insts,
                flushable: req.flush_allowed && !tb.past_idem_point,
            };
            (tb.index, model.estimate(progress, resident, max_executed))
        })
        .collect();
    let mut candidates: Vec<(u32, crate::cost::TbCost)> = per_block
        .iter()
        .flat_map(|(tb, costs)| costs.iter().map(|&c| (*tb, c)))
        .collect();
    // Line 7: sort by throughput overhead.
    candidates.sort_by_key(|(_, c)| (c.overhead_insts, c.latency_cycles));
    // Lines 8-13: greedily keep the cheapest feasible technique per block.
    // The chosen cost travels with the entry so the SM-level aggregate below
    // can never diverge from the per-block selection.
    let mut chosen: Vec<(u32, crate::cost::TbCost)> = Vec::with_capacity(resident);
    for (tb, cost) in &candidates {
        if cost.latency_cycles <= req.limit_cycles && !chosen.iter().any(|(picked, _)| picked == tb)
        {
            chosen.push((*tb, *cost));
        }
    }
    // Lines 14-16: blocks that cannot meet the limit fall back to context
    // switching, charged at the *estimated switch cost* — not a fabricated
    // zero-overhead entry, which would undercount the SM's overhead and bias
    // selection toward fallback-heavy SMs at the feasibility boundary.
    for (tb, costs) in &per_block {
        if !chosen.iter().any(|(picked, _)| picked == tb) {
            let switch = costs
                .iter()
                .find(|c| c.technique == Technique::Switch)
                .copied()
                .expect("switch cost is always estimated");
            chosen.push((*tb, switch));
        }
    }
    // Aggregate the SM-level estimate from the chosen techniques.
    let mut est_latency = 0u64;
    let mut est_overhead = 0u64;
    for (_, cost) in &chosen {
        est_latency = est_latency.max(cost.latency_cycles);
        est_overhead = est_overhead.saturating_add(cost.overhead_insts);
    }
    // Decision records for the observability event log: the full estimate
    // table per block plus the technique Algorithm 1 settled on.
    let decisions = chosen
        .iter()
        .map(|&(tb, picked)| {
            let est = |t: Technique| -> Option<gpu_sim::TechniqueEstimate> {
                per_block
                    .iter()
                    .find(|(b, _)| *b == tb)
                    .and_then(|(_, costs)| costs.iter().find(|c| c.technique == t))
                    .map(|c| gpu_sim::TechniqueEstimate {
                        latency_cycles: c.latency_cycles,
                        overhead_insts: c.overhead_insts,
                    })
            };
            gpu_sim::BlockDecision {
                block: tb,
                chosen: picked.technique,
                est_switch: est(Technique::Switch),
                est_drain: est(Technique::Drain),
                est_flush: est(Technique::Flush),
            }
        })
        .collect();
    PlanForSm {
        sm: snap.sm,
        plan: SmPreemptPlan {
            entries: chosen
                .into_iter()
                .map(|(tb, c)| (tb, c.technique))
                .collect(),
            allow_unsafe_flush: false,
        },
        est_latency_cycles: est_latency,
        est_overhead_insts: est_overhead,
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{SmSnapshot, TbSnapshotInfo};

    fn cfg() -> GpuConfig {
        GpuConfig::fermi()
    }

    fn obs() -> KernelObs {
        // 1000-inst blocks at CPI 16 (4 blocks sharing the issue port).
        KernelObs {
            avg_tb_insts: Some(1000.0),
            avg_tb_cpi: Some(16.0),
            ..KernelObs::default()
        }
    }

    fn snap(sm: usize, blocks: Vec<(u32, u64, bool)>) -> SmSnapshot {
        SmSnapshot {
            sm,
            kernel: None,
            blocks: blocks
                .into_iter()
                .map(|(index, executed_insts, past)| TbSnapshotInfo {
                    index,
                    executed_insts,
                    elapsed_cycles: executed_insts * 16,
                    past_idem_point: past,
                })
                .collect(),
        }
    }

    fn req(limit_us: f64, num: usize) -> SelectionRequest {
        SelectionRequest {
            limit_cycles: cfg().us_to_cycles(limit_us),
            num_preempts: num,
            ctx_bytes_per_tb: 24 * 1024,
            obs: obs(),
            flush_allowed: true,
            estimator: EstimatorConfig::default(),
        }
    }

    #[test]
    fn young_blocks_flush_old_blocks_drain() {
        // The theoretical Figure 4 shape: flush early, drain late.
        let s = snap(0, vec![(0, 10, false), (1, 990, false)]);
        let plans = select_preemptions(&cfg(), &req(15.0, 1), &[s]);
        assert_eq!(plans.len(), 1);
        let plan = &plans[0].plan;
        assert_eq!(
            plan.technique_for(0),
            Some(Technique::Flush),
            "young block flushes"
        );
        assert_eq!(
            plan.technique_for(1),
            Some(Technique::Drain),
            "old block drains"
        );
        assert!(plans[0].meets(req(15.0, 1).limit_cycles));
    }

    #[test]
    fn unflushable_block_near_start_with_tight_limit_switches() {
        // Past the idempotence point but barely started: draining would take
        // ~990 insts x 16 CPI = 15840 cycles (11.3 us) — under a 15 us limit
        // drain is fine; under a 5 us limit it must switch.
        let s = snap(0, vec![(0, 10, true)]);
        let plans = select_preemptions(&cfg(), &req(5.0, 1), &[s]);
        assert_eq!(plans[0].plan.technique_for(0), Some(Technique::Switch));
    }

    #[test]
    fn strict_mode_disables_flushing() {
        let s = snap(0, vec![(0, 10, false)]);
        let mut r = req(15.0, 1);
        r.flush_allowed = false;
        let plans = select_preemptions(&cfg(), &r, &[s]);
        assert_ne!(plans[0].plan.technique_for(0), Some(Technique::Flush));
    }

    #[test]
    fn picks_lowest_overhead_sms_first() {
        // SM 0 holds old blocks (expensive to flush, cheap to drain); SM 1
        // holds young blocks (cheap to flush). Requesting one SM must take
        // the cheaper one.
        let s0 = snap(0, vec![(0, 900, false), (1, 950, false)]);
        let s1 = snap(1, vec![(2, 10, false), (3, 20, false)]);
        let plans = select_preemptions(&cfg(), &req(15.0, 1), &[s0, s1]);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].sm, 1);
    }

    #[test]
    fn returns_requested_number_of_sms() {
        let sms: Vec<SmSnapshot> = (0u32..6)
            .map(|i| snap(i as usize, vec![(i, 100, false)]))
            .collect();
        let plans = select_preemptions(&cfg(), &req(15.0, 4), &sms);
        assert_eq!(plans.len(), 4);
        let mut ids: Vec<usize> = plans.iter().map(|p| p.sm).collect();
        ids.dedup();
        assert_eq!(ids.len(), 4, "no SM selected twice");
    }

    #[test]
    fn shortfall_filled_with_lowest_latency() {
        // Blocks past their idempotence point with missing drain stats force
        // switch (latency ~4.2 us for one 24 kB block) on every SM; with a
        // 2 us limit nothing meets, but the request must still be served.
        let mut r = req(2.0, 2);
        r.obs = KernelObs::default();
        let sms: Vec<SmSnapshot> = (0u32..3)
            .map(|i| snap(i as usize, vec![(i, 50, true)]))
            .collect();
        let plans = select_preemptions(&cfg(), &r, &sms);
        assert_eq!(plans.len(), 2);
        for p in &plans {
            assert!(!p.meets(r.limit_cycles));
            let sm = u32::try_from(p.sm).unwrap();
            assert_eq!(p.plan.technique_for(sm), Some(Technique::Switch));
        }
    }

    #[test]
    fn empty_sms_are_skipped() {
        let s0 = snap(0, vec![]);
        let s1 = snap(1, vec![(0, 10, false)]);
        let plans = select_preemptions(&cfg(), &req(15.0, 2), &[s0, s1]);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].sm, 1);
    }

    /// The shrunk counterexample recorded in
    /// `tests/selection_properties.proptest-regressions`, frozen as plain
    /// data so the fix stays pinned even if that file is deleted.
    fn regression_snapshots() -> Vec<SmSnapshot> {
        type SmData<'a> = (usize, &'a [(u32, u64, bool)]);
        let data: &[SmData] = &[
            (0, &[(0, 157, true), (1, 1705, true)]),
            (1, &[(8, 490, true), (9, 331, false)]),
            (
                2,
                &[
                    (16, 480, false),
                    (17, 668, true),
                    (18, 1225, false),
                    (19, 760, true),
                    (20, 1721, false),
                ],
            ),
            (
                3,
                &[
                    (24, 1504, true),
                    (25, 1535, false),
                    (26, 1552, false),
                    (27, 1179, true),
                    (28, 1960, false),
                    (29, 1006, true),
                ],
            ),
            (
                4,
                &[
                    (32, 1539, true),
                    (33, 577, true),
                    (34, 1855, false),
                    (35, 1198, true),
                ],
            ),
            (5, &[(40, 351, true), (41, 796, true)]),
            (
                6,
                &[
                    (48, 195, true),
                    (49, 121, true),
                    (50, 714, false),
                    (51, 233, true),
                    (52, 1273, true),
                    (53, 310, false),
                    (54, 268, false),
                ],
            ),
        ];
        data.iter()
            .map(|&(sm, blocks)| snap(sm, blocks.to_vec()))
            .collect()
    }

    /// Every structural invariant of Algorithm 1, checked over the frozen
    /// proptest counterexample crossed with a dense grid of requests
    /// (deterministic mirror of `tests/selection_properties.rs`).
    #[test]
    fn frozen_regression_case_upholds_selection_invariants() {
        let cfg = cfg();
        let snaps = regression_snapshots();
        let prop_obs = KernelObs {
            avg_tb_insts: Some(1000.0),
            avg_tb_cpi: Some(16.0),
            std_tb_insts: 40.0,
            max_tb_insts: 1100,
            quantile_tb_insts: None,
        };
        for limit_cycles in [1, 157, 2_512, 5_000, 15_088, 16_000, 39_999] {
            for ctx_bytes_per_tb in [1, 24 * 1024, 127 * 1024] {
                for num_preempts in 1..=7usize {
                    for (obs, flush_allowed) in [
                        (KernelObs::default(), false),
                        (KernelObs::default(), true),
                        (prop_obs, false),
                        (prop_obs, true),
                    ] {
                        let req = SelectionRequest {
                            limit_cycles,
                            num_preempts,
                            ctx_bytes_per_tb,
                            obs,
                            flush_allowed,
                            estimator: EstimatorConfig::default(),
                        };
                        let plans = select_preemptions(&cfg, &req, &snaps);
                        assert_eq!(plans.len(), num_preempts.min(snaps.len()));
                        let mut seen = std::collections::HashSet::new();
                        for p in &plans {
                            assert!(seen.insert(p.sm), "SM {} selected twice", p.sm);
                            let snap = snaps
                                .iter()
                                .find(|s| s.sm == p.sm)
                                .expect("plan for known SM");
                            assert_eq!(p.plan.entries.len(), snap.blocks.len());
                            assert!(!p.plan.allow_unsafe_flush);
                            for b in &snap.blocks {
                                let t = p.plan.technique_for(b.index);
                                assert!(t.is_some(), "block {} uncovered", b.index);
                                if b.past_idem_point || !req.flush_allowed {
                                    assert_ne!(t, Some(Technique::Flush), "unsafe flush");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Per-SM monotonicity over the frozen counterexample: loosening the
    /// latency limit never raises an SM's estimated overhead.
    #[test]
    fn frozen_regression_case_upholds_per_sm_monotonicity() {
        let cfg = cfg();
        for snap in regression_snapshots() {
            let snaps = vec![snap];
            let mut prev = u64::MAX;
            for limit_us in [2.0, 5.0, 15.0, 50.0, 1000.0] {
                let req = SelectionRequest {
                    limit_cycles: cfg.us_to_cycles(limit_us),
                    num_preempts: 1,
                    ctx_bytes_per_tb: 24 * 1024,
                    obs: KernelObs {
                        avg_tb_insts: Some(1000.0),
                        avg_tb_cpi: Some(16.0),
                        std_tb_insts: 0.0,
                        max_tb_insts: 1000,
                        quantile_tb_insts: None,
                    },
                    flush_allowed: true,
                    estimator: EstimatorConfig::default(),
                };
                let plans = select_preemptions(&cfg, &req, &snaps);
                let p = plans.first().expect("one plan per nonempty SM");
                assert!(
                    p.est_overhead_insts <= prev,
                    "sm {}: overhead rose from {prev} to {} at {limit_us}us",
                    p.sm,
                    p.est_overhead_insts
                );
                prev = p.est_overhead_insts;
            }
        }
    }

    /// Fallback blocks are charged the real estimated switch cost, never a
    /// fabricated zero: an SM whose blocks all miss the limit must report
    /// the full switch overhead so selection cannot favour it spuriously.
    #[test]
    fn fallback_blocks_charge_real_switch_cost() {
        let c = cfg();
        // No statistics (drain unestimable), past the idempotence point (no
        // flush), and a limit below the switch latency: every block falls
        // back to switching without meeting the limit.
        let mut r = req(1.0, 1);
        r.obs = KernelObs::default();
        let s = snap(0, vec![(0, 50, true), (1, 70, true)]);
        let plans = select_preemptions(&c, &r, &[s]);
        let p = &plans[0];
        assert_eq!(p.plan.technique_for(0), Some(Technique::Switch));
        assert_eq!(p.plan.technique_for(1), Some(Technique::Switch));
        assert!(!p.meets(r.limit_cycles), "limit is below switch latency");
        let model = crate::cost::CostModel::new(&c, r.ctx_bytes_per_tb, r.obs);
        let switch_cost = model
            .estimate(
                crate::cost::TbProgress {
                    executed_insts: 50,
                    flushable: false,
                },
                2,
                70,
            )
            .into_iter()
            .find(|t| t.technique == Technique::Switch)
            .unwrap();
        assert!(switch_cost.overhead_insts > 0);
        assert_eq!(p.est_overhead_insts, 2 * switch_cost.overhead_insts);
        assert_eq!(p.est_latency_cycles, switch_cost.latency_cycles);
    }

    /// The decision records handed to the event log must agree with the plan
    /// that will actually execute, and their estimates must reproduce the
    /// SM-level aggregates.
    #[test]
    fn decisions_mirror_the_chosen_plan() {
        let s = snap(0, vec![(0, 10, false), (1, 990, false), (2, 500, true)]);
        let plans = select_preemptions(&cfg(), &req(15.0, 1), &[s]);
        let p = &plans[0];
        assert_eq!(p.decisions.len(), p.plan.entries.len());
        let mut overhead = 0u64;
        let mut latency = 0u64;
        for d in &p.decisions {
            assert_eq!(p.plan.technique_for(d.block), Some(d.chosen));
            let est = d.chosen_estimate().expect("chosen technique was estimated");
            overhead += est.overhead_insts;
            latency = latency.max(est.latency_cycles);
        }
        assert_eq!(overhead, p.est_overhead_insts);
        assert_eq!(latency, p.est_latency_cycles);
    }

    /// The risk knob changes selection: a kernel with a rare-straggler
    /// distribution (huge observed max, modest p95) cannot drain under the
    /// worst-case static bound, but the online risk-priced bound fits the
    /// deadline slack and drain's lower overhead wins. The static mode must
    /// ignore a quantile even if one is present in the observations.
    #[test]
    fn online_risk_quantile_unlocks_drain_where_static_switches() {
        let c = cfg();
        let risky_obs = KernelObs {
            avg_tb_insts: Some(1000.0),
            avg_tb_cpi: Some(16.0),
            std_tb_insts: 100.0,
            max_tb_insts: 20_000, // one straggler block dominates the bound
            quantile_tb_insts: Some(1100.0),
        };
        let s = snap(0, vec![(0, 100, true)]);
        let mut r = req(15.0, 1);
        r.obs = risky_obs;
        // Static: drain bound is the 20 000-inst max → ~318k cycles, far
        // over the limit; the block falls back to switching.
        let plans = select_preemptions(&c, &r, std::slice::from_ref(&s));
        assert_eq!(plans[0].plan.technique_for(0), Some(Technique::Switch));
        // Online at p95: bound 1100 insts → 16k cycles, inside the limit.
        r.estimator = EstimatorConfig::online(0.95);
        let plans = select_preemptions(&c, &r, &[s]);
        assert_eq!(plans[0].plan.technique_for(0), Some(Technique::Drain));
        assert!(plans[0].meets(r.limit_cycles));
    }

    #[test]
    fn plan_covers_every_resident_block() {
        let s = snap(
            0,
            vec![
                (0, 10, false),
                (1, 500, true),
                (2, 990, false),
                (3, 40, true),
            ],
        );
        let plans = select_preemptions(&cfg(), &req(15.0, 1), &[s]);
        let plan = &plans[0].plan;
        for b in 0..4u32 {
            assert!(plan.technique_for(b).is_some(), "block {b} uncovered");
        }
        // Blocks past the idempotence point never flush.
        assert_ne!(plan.technique_for(1), Some(Technique::Flush));
        assert_ne!(plan.technique_for(3), Some(Technique::Flush));
    }
}
