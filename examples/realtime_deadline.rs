//! A periodic real-time task preempting a GPGPU benchmark (§4.1 scenario):
//! compare deadline violations and throughput across the four policies.
//!
//! Run with: `cargo run --release --example realtime_deadline`

use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use workloads::Suite;

fn main() {
    let suite = Suite::standard();
    let cfg = suite.config();
    let bench = suite.benchmark("BS").expect("BlackScholes in suite");
    let pcfg = PeriodicConfig::paper_default(cfg).horizon_us(8_000.0);
    println!("== BlackScholes + a 1 ms-periodic task needing 15 SMs for 200 us ==");
    println!(
        "   (preemption latency constraint: {} us)\n",
        pcfg.common.constraint_us
    );
    let mut oracle_useful = None;
    let mut lineup = vec![Policy::Oracle];
    lineup.extend(Policy::paper_lineup(15.0));
    for policy in lineup {
        let r = run_periodic(cfg, bench, policy, &pcfg);
        if policy.is_oracle() {
            oracle_useful = Some(r.useful_insts);
            println!(
                "{:>14}: (baseline) {} useful instructions",
                "oracle", r.useful_insts
            );
            continue;
        }
        let overhead = oracle_useful
            .map(|o| 100.0 * (1.0 - r.useful_insts as f64 / o as f64))
            .unwrap_or(f64::NAN);
        let ok_lat = r
            .mean_ok_latency_us
            .map_or_else(|| "  n/a".into(), |l| format!("{l:>5.2}"));
        println!(
            "{:>14}: {:>5.1}% deadline violations | {:>5.1}% throughput overhead | mean ok-latency {ok_lat} us",
            policy.to_string(),
            r.violation_pct(),
            overhead,
        );
    }
    println!(
        "\nBlackScholes blocks run ~61 us, so draining busts the 15 us budget, and\n\
         its 24 kB x 4 block context makes switching too slow as well. Chimera\n\
         flushes young blocks and drains nearly-done ones — meeting the deadline\n\
         at drain-like overhead."
    );
}
