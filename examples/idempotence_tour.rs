//! A tour of idempotence-based flushing: why it is safe, when it is not, and
//! what the relaxed condition buys (§2.3, §3.4).
//!
//! Run with: `cargo run --release --example idempotence_tour`

use gpu_sim::{Engine, GpuConfig, KernelDesc, Program, Segment, SmPreemptPlan, Technique};
use idem::{analyze, instrument_kernel, KernelIdempotence};

fn main() {
    let cfg = GpuConfig::fermi();
    println!("== Idempotence tour ==\n");

    // 1. A strictly idempotent kernel: flush anywhere, output intact.
    let pure = KernelDesc::builder("vector-scale")
        .grid_blocks(8)
        .threads_per_block(64)
        .program(Program::new(vec![
            Segment::load(16),
            Segment::compute(4000),
            Segment::store(16),
        ]))
        .build()
        .expect("valid kernel");
    println!(
        "[1] '{}' is strictly idempotent: {:?}",
        pure.name(),
        KernelIdempotence::of(&pure)
    );
    let mut e = Engine::new(cfg.clone());
    let k = e.launch_kernel(pure.clone());
    e.assign_sm(0, Some(k));
    e.run_until(cfg.us_to_cycles(4.0));
    let plan = SmPreemptPlan::uniform(e.sm_resident_indices(0), Technique::Flush);
    e.preempt_sm(0, &plan)
        .expect("idempotent blocks flush freely");
    e.assign_sm(0, Some(k));
    e.run_until(cfg.us_to_cycles(100_000.0));
    assert!(e.kernel_stats(k).finished);
    println!(
        "    flushed mid-run, re-executed from scratch: {} memory mismatches\n",
        e.output_mismatches(k)
    );

    // 2. A non-idempotent kernel: the same flush would corrupt memory.
    let scatter = KernelDesc::builder("histogram")
        .grid_blocks(8)
        .threads_per_block(64)
        .program(Program::new(vec![
            Segment::load(16),
            Segment::compute(1000),
            Segment::atomic(4), // bin increments: re-running double-counts
            Segment::compute(1000),
        ]))
        .build()
        .expect("valid kernel");
    let report = analyze(scatter.program());
    println!(
        "[2] '{}' breaks idempotence at segment {} ({})",
        scatter.name(),
        report.first_site().expect("has a site").seg_idx,
        report.first_site().expect("has a site").reason,
    );
    let mut e = Engine::new(cfg.clone());
    let k = e.launch_kernel(scatter.clone());
    e.assign_sm(0, Some(k));
    e.run_until(cfg.us_to_cycles(80.0)); // long enough to pass the atomic
    let resident = e.sm_resident_indices(0);
    let safe = SmPreemptPlan::uniform(resident.clone(), Technique::Flush);
    println!(
        "    engine refuses a late flush: {:?}",
        e.preempt_sm(0, &safe).unwrap_err()
    );
    let unsafe_plan = SmPreemptPlan {
        allow_unsafe_flush: true,
        ..safe
    };
    e.preempt_sm(0, &unsafe_plan).expect("forced");
    e.assign_sm(0, Some(k));
    e.run_until(cfg.us_to_cycles(100_000.0));
    println!(
        "    forcing it anyway corrupts: {} memory mismatches (double-counted atomics)\n",
        e.output_mismatches(k)
    );

    // 3. The relaxed condition: instrument, flush *before* the idempotence
    //    point, stay correct — even though the kernel is non-idempotent.
    let instrumented = instrument_kernel(&scatter);
    println!(
        "[3] instrumented program: {}",
        instrumented
            .program()
            .segments()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    let mut e = Engine::new(cfg.clone());
    let k = e.launch_kernel(instrumented);
    e.assign_sm(0, Some(k));
    e.run_until(cfg.us_to_cycles(2.0)); // before any block reaches the atomic
    let snap = e.sm_snapshot(0);
    assert!(snap.blocks.iter().all(|b| !b.past_idem_point));
    let plan = SmPreemptPlan::uniform(e.sm_resident_indices(0), Technique::Flush);
    e.preempt_sm(0, &plan)
        .expect("early blocks are still idempotent");
    e.assign_sm(0, Some(k));
    e.run_until(cfg.us_to_cycles(100_000.0));
    assert!(e.kernel_stats(k).finished);
    println!(
        "    flushed before the protect store fired: {} memory mismatches",
        e.output_mismatches(k)
    );

    // 4. Addressed regions: the analysis *derives* overwrites from dataflow —
    //    a plain store only breaks idempotence when its region aliases an
    //    earlier read — and the dynamic flush sanitizer cross-checks every
    //    flush against the block's recorded footprint (see ANALYSIS.md).
    use gpu_sim::AccessRegion;
    let in_place = KernelDesc::builder("in-place-update")
        .grid_blocks(8)
        .threads_per_block(64)
        .program(Program::new(vec![
            Segment::load_region(16, AccessRegion::per_block_window(0, 0, 16)),
            Segment::compute(3000),
            // A plain store — but into the window the load read.
            Segment::store_region(16, AccessRegion::per_block_window(0, 0, 16)),
        ]))
        .build()
        .expect("valid kernel");
    let report = analyze(in_place.program());
    println!(
        "\n[4] '{}' writes the window it read — derived, with provenance: {}",
        in_place.name(),
        report.first_site().expect("derived overwrite"),
    );
    let mut e = Engine::new(cfg.clone());
    e.enable_sanitizer();
    let k = e.launch_kernel(instrument_kernel(&in_place));
    e.assign_sm(0, Some(k));
    e.run_until(cfg.us_to_cycles(2.0)); // before any block reaches the store
    let plan = SmPreemptPlan::uniform(e.sm_resident_indices(0), Technique::Flush);
    e.preempt_sm(0, &plan)
        .expect("pre-point flushes stay legal");
    e.assign_sm(0, Some(k));
    e.run_until(cfg.us_to_cycles(100_000.0));
    assert!(e.kernel_stats(k).finished);
    let rep = e.take_sanitizer().expect("sanitizer was enabled");
    println!("    dynamic oracle agrees: {}", rep.report());
    assert!(rep.report().is_clean());

    println!("\nThe relaxed condition keeps most of a block's lifetime flushable even in");
    println!("non-idempotent kernels — the key to Figure 9's strict-vs-relaxed gap.");
}
