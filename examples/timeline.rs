//! Render an ASCII utilization timeline of the periodic-preemption scenario:
//! watch the real-time task carve 15 SMs out of a running benchmark once per
//! period and hand them back.
//!
//! Run with: `cargo run --release --example timeline`

use chimera::runner::Job;
use gpu_sim::trace::UtilizationTrace;
use gpu_sim::{Engine, SmPreemptPlan, Technique};
use workloads::Suite;

fn main() {
    let suite = Suite::standard();
    let cfg = suite.config().clone();
    let bench = suite.benchmark("ST").expect("ST in suite");
    let mut engine = Engine::new(cfg.clone());
    engine.set_break_on_kernel_finish(true);
    let mut job = Job::new(bench.clone(), None);
    job.ensure_running(&mut engine);
    let kid = job.current().expect("launched");
    for sm in 0..cfg.num_sms {
        engine.assign_sm(sm, Some(kid));
    }
    let mut trace = UtilizationTrace::new(cfg.us_to_cycles(10.0));
    let period = cfg.us_to_cycles(1000.0);
    let exec = cfg.us_to_cycles(200.0);
    let mut next_request = period;
    let mut releases: Vec<(u64, usize)> = Vec::new();
    let horizon = cfg.us_to_cycles(3_000.0);
    while engine.cycle() < horizon {
        let t = trace
            .next_due()
            .min(next_request)
            .min(releases.iter().map(|&(t, _)| t).min().unwrap_or(u64::MAX))
            .max(engine.cycle() + 1);
        engine.run_until(t.min(horizon));
        let now = engine.cycle();
        job.ensure_running(&mut engine);
        let kid = job.current().expect("job keeps running");
        if now >= trace.next_due() {
            trace.sample(&engine);
        }
        // Return released SMs (and keep every non-held SM on the job's
        // current kernel across relaunches).
        for (rt, sm) in releases.clone() {
            if now >= rt {
                engine.assign_sm(sm, Some(kid));
            }
        }
        releases.retain(|&(rt, _)| rt > now);
        for sm in 0..cfg.num_sms {
            if !releases.iter().any(|&(_, s)| s == sm)
                && !engine.sm_is_preempting(sm)
                && engine.sm_assigned(sm) != Some(kid)
            {
                engine.assign_sm(sm, Some(kid));
            }
        }
        // Periodic request: flush half the SMs (ST is idempotent).
        if now >= next_request {
            for sm in 0..cfg.num_sms / 2 {
                if engine.sm_is_preempting(sm) {
                    continue;
                }
                let resident = engine.sm_resident_indices(sm);
                if resident.is_empty() {
                    engine.assign_sm(sm, None);
                } else {
                    let plan = SmPreemptPlan::uniform(resident, Technique::Flush);
                    if engine.preempt_sm(sm, &plan).is_ok() {
                        // SM is vacated instantly; hold it for the task.
                    }
                }
                releases.push((now + exec, sm));
            }
            next_request += period;
        }
    }
    println!("Utilization timeline: ST benchmark + 1 ms-periodic task flushing SMs 0-14");
    println!("(glyphs: digit = resident blocks, '.' idle, 'H' halted, 'P' preempting)\n");
    print!("{}", trace.render(110));
    println!(
        "\noverall busy fraction: {:.1}%  (SMs 0-14 show the 200 us idle notches\n\
         where the task held them; SMs 15-29 run undisturbed)",
        100.0 * trace.overall_busy_fraction()
    );
}
