//! Quickstart: launch two kernels, preempt one SM with each technique, and
//! watch the trade-offs the paper is built on.
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_sim::{Engine, GpuConfig, KernelDesc, Program, Segment, SmPreemptPlan, Technique};

fn main() {
    let cfg = GpuConfig::fermi();
    println!("== Chimera quickstart: three ways to take an SM back ==\n");

    // An idempotent kernel: pure loads, compute, and fresh stores.
    let kernel = KernelDesc::builder("saxpy-like")
        .grid_blocks(64)
        .threads_per_block(128)
        .regs_per_thread(24)
        .shared_mem_per_block(4096)
        .program(Program::new(vec![
            Segment::load(32),
            Segment::compute(1200),
            Segment::store(32),
        ]))
        .build()
        .expect("valid kernel");
    println!("kernel: {kernel}");
    println!(
        "  context/block = {} kB, idempotent = {}\n",
        kernel.block_context_bytes() / 1024,
        kernel.program().is_idempotent()
    );

    for technique in Technique::ALL {
        let mut engine = Engine::new(cfg.clone());
        let kid = engine.launch_kernel(kernel.clone());
        engine.assign_sm(0, Some(kid));
        // Let blocks make some progress.
        engine.run_until(cfg.us_to_cycles(3.0));
        let resident = engine.sm_resident_indices(0);
        let progress: u64 = engine
            .sm_snapshot(0)
            .blocks
            .iter()
            .map(|b| b.executed_insts)
            .sum();
        let plan = SmPreemptPlan::uniform(resident, technique);
        let t0 = engine.cycle();
        engine
            .preempt_sm(0, &plan)
            .expect("plan covers resident blocks");
        // Run until the preemption completes.
        let mut latency = None;
        while latency.is_none() {
            for ev in engine.run_for(cfg.us_to_cycles(5.0)) {
                if let gpu_sim::Event::PreemptionCompleted { latency_cycles, .. } = ev {
                    latency = Some(latency_cycles);
                }
            }
            if engine.cycle() > t0 + cfg.us_to_cycles(500.0) {
                break;
            }
        }
        let stats = engine.kernel_stats(kid);
        println!(
            "{technique:>6}: latency = {:>6.2} us | work discarded = {:>5} insts | progress at request = {progress} insts",
            cfg.cycles_to_us(latency.unwrap_or(0)),
            stats.wasted_flush_insts,
        );
    }

    println!(
        "\nflush is instant but discards work; drain wastes nothing but takes as long\n\
         as the slowest block; switching pays a fixed save/restore toll. Chimera\n\
         (crates/core) picks per block — see the realtime_deadline example."
    );
}
