//! Two benchmarks sharing the GPU (§4.4 scenario): LUD's launch churn versus
//! a long-running kernel, under FCFS and collaborative preemption.
//!
//! Run with: `cargo run --release --example multiprogram`

use chimera::metrics::{antt, stp};
use chimera::policy::Policy;
use chimera::runner::multiprog::{run_fcfs, run_pair, MultiprogConfig};
use chimera::runner::solo::run_solo;
use gpu_sim::GpuConfig;
use workloads::{Suite, SuiteOptions};

fn main() {
    // A reduced suite keeps the FCFS baseline quick.
    let suite = Suite::with_options(
        GpuConfig::fermi(),
        SuiteOptions {
            instrumented: true,
            grid_scale: 0.35,
            lud_iterations: 8,
        },
    );
    let cfg = suite.config();
    let lud = suite.benchmark("LUD").expect("LUD");
    let other = suite.benchmark("KM").expect("KM");
    let mcfg = MultiprogConfig::paper_default()
        .budget_insts(1_200_000)
        .horizon_us(800_000.0);
    println!("== LUD + Kmeans sharing 30 SMs ==\n");
    let lud_solo = run_solo(
        cfg,
        lud,
        Some(mcfg.budget_insts),
        cfg.us_to_cycles(200_000.0),
        42,
    );
    let km_solo = run_solo(
        cfg,
        other,
        Some(mcfg.budget_insts),
        cfg.us_to_cycles(200_000.0),
        42,
    );
    println!(
        "solo turnaround: LUD {:.2} ms, KM {:.2} ms\n",
        cfg.cycles_to_us(lud_solo.cycles) / 1000.0,
        cfg.cycles_to_us(km_solo.cycles) / 1000.0
    );
    let report = |label: &str, t0: Option<u64>, t1: Option<u64>, preemptions: usize| {
        let (m0, m1) = (t0.expect("measured") as f64, t1.expect("measured") as f64);
        let pairs = [(m0, lud_solo.cycles as f64), (m1, km_solo.cycles as f64)];
        println!(
            "{label:>8}: LUD {:.2} ms, KM {:.2} ms | ANTT {:.2} | STP {:.2} | {} preemptions",
            cfg.cycles_to_us(m0 as u64) / 1000.0,
            cfg.cycles_to_us(m1 as u64) / 1000.0,
            antt(&pairs),
            stp(&pairs),
            preemptions,
        );
    };
    let f = run_fcfs(cfg, lud, other, &mcfg);
    report("FCFS", f.jobs[0].t_multi, f.jobs[1].t_multi, f.preemptions);
    for policy in Policy::paper_lineup(30.0) {
        let p = run_pair(cfg, lud, other, policy, &mcfg);
        report(
            &policy.to_string(),
            p.jobs[0].t_multi,
            p.jobs[1].t_multi,
            p.preemptions,
        );
    }
    println!(
        "\nFCFS makes each of LUD's dozens of little launches wait behind Kmeans'\n\
         long kernels; preemptive spatial sharing removes the waiting, and Chimera\n\
         does it with the cheapest safe technique per thread block."
    );
}
