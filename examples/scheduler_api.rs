//! The downstream-user API: a multitasking GPU with collaborative
//! preemption in ~30 lines. Three processes with different appetites share
//! 30 SMs; Chimera keeps hand-overs fast and cheap, the Smart-Even policy
//! keeps the partition fair.
//!
//! Run with: `cargo run --release --example scheduler_api`

use chimera::partition::PartitionPolicy;
use chimera::policy::Policy;
use chimera::scheduler::{GpuScheduler, SchedEvent};
use gpu_sim::GpuConfig;
use workloads::SyntheticKernel;

fn main() {
    let cfg = GpuConfig::fermi();
    let mut gpu = GpuScheduler::builder(cfg.clone())
        .policy(Policy::chimera_us(15.0))
        .partition(PartitionPolicy::SmartEven)
        .build();

    let video = gpu.add_process(); // steady mid-size kernels
    let ml = gpu.add_process(); // one long training-style kernel
    let burst = gpu.add_process(); // late-arriving burst

    for i in 0..4 {
        gpu.submit(
            video,
            SyntheticKernel::new(format!("video-frame-{i}"))
                .block_time_us(30.0)
                .blocks_per_sm(6)
                .grid_blocks(900)
                .build(&cfg),
        );
    }
    gpu.submit(
        ml,
        SyntheticKernel::new("training-step")
            .block_time_us(300.0)
            .blocks_per_sm(4)
            .memory_fraction(0.12)
            .grid_blocks(1_200)
            .build(&cfg),
    );

    println!("== three processes on one GPU (Chimera @ 15 us, smart-even partition) ==\n");
    let mut burst_submitted = false;
    for step in 0..60 {
        let events = gpu.run_for_us(100.0);
        for ev in events {
            match ev {
                SchedEvent::KernelStarted { proc, kernel } => {
                    println!(
                        "[{:>7.1} us] {proc}: kernel {kernel} started",
                        cfg.cycles_to_us(gpu.cycle())
                    );
                }
                SchedEvent::KernelFinished { proc, kernel } => {
                    println!(
                        "[{:>7.1} us] {proc}: kernel {kernel} finished",
                        cfg.cycles_to_us(gpu.cycle())
                    );
                }
                SchedEvent::SmReassigned { .. } => {}
            }
        }
        if step == 10 && !burst_submitted {
            println!("[{:>7.1} us] P2 bursts in!", cfg.cycles_to_us(gpu.cycle()));
            gpu.submit(
                burst,
                SyntheticKernel::new("burst")
                    .block_time_us(10.0)
                    .blocks_per_sm(8)
                    .non_idem_at(0.9)
                    .grid_blocks(2_000)
                    .build(&cfg),
            );
            burst_submitted = true;
        }
        if gpu.is_idle() {
            break;
        }
    }
    println!(
        "\nprogress: video {} insts | training {} insts | burst {} insts",
        gpu.useful_insts(video),
        gpu.useful_insts(ml),
        gpu.useful_insts(burst),
    );
    println!(
        "SM preemptions performed along the way: {}",
        gpu.engine().preempt_records().len()
    );
    println!("\nEvery hand-over was served with the cheapest technique that met 15 us —");
    println!("flush for young blocks, drain for nearly-done ones, switch as the fallback.");
}
