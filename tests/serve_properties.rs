//! Property-based tests over the open-loop serving front-end: arrival
//! streams must be pure functions of the seed (and so `--jobs`-independent),
//! serve runs must be deterministic end to end, the result accounting must
//! balance, and the weighted-fair dispatcher must not starve a light tenant
//! behind a heavy one.

use chimera::runner::serve::{run_serve, ArrivalProcess, ServeConfig};
use gpu_sim::GpuConfig;
use proptest::prelude::*;
use workloads::ServeWorkload;

fn arbitrary_process() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (0.5f64..20.0).prop_map(|rate_per_ms| ArrivalProcess::Poisson { rate_per_ms }),
        (
            0.5f64..5.0,
            5.0f64..20.0,
            500.0f64..5_000.0,
            500.0f64..5_000.0
        )
            .prop_map(|(calm_per_ms, burst_per_ms, mean_calm_us, mean_burst_us)| {
                ArrivalProcess::Bursty {
                    calm_per_ms,
                    burst_per_ms,
                    mean_calm_us,
                    mean_burst_us,
                }
            }),
        (0.5f64..20.0, 0.0f64..1.0, 2_000.0f64..20_000.0).prop_map(
            |(mean_per_ms, relative_amplitude, period_us)| {
                ArrivalProcess::Diurnal {
                    mean_per_ms,
                    relative_amplitude,
                    period_us,
                }
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same (process, seed, horizon) always yields the same stream, and
    /// a different seed yields a different one: generation is a counter-
    /// based pure function, never dependent on evaluation order.
    #[test]
    fn arrivals_are_a_pure_function_of_the_seed(
        process in arbitrary_process(),
        seed in 0u64..1_000_000,
        horizon in 5_000.0f64..50_000.0,
    ) {
        let a = process.generate(seed, horizon);
        let b = process.generate(seed, horizon);
        prop_assert_eq!(&a, &b, "same seed must reproduce byte-identically");
        if !a.is_empty() {
            let c = process.generate(seed.wrapping_add(1), horizon);
            prop_assert_ne!(&a, &c, "seed must actually steer the stream");
        }
    }

    /// Streams are sorted, in-horizon, and roughly at the advertised mean
    /// rate (generous 3-sigma-ish band; burstiness widens the variance).
    #[test]
    fn arrivals_are_sorted_in_horizon_and_rate_sane(
        process in arbitrary_process(),
        seed in 0u64..1_000_000,
    ) {
        let horizon = 100_000.0;
        let times = process.generate(seed, horizon);
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1], "arrivals must be sorted");
        }
        for &t in &times {
            prop_assert!((0.0..horizon).contains(&t), "t={t} outside horizon");
        }
        let expected = process.mean_rate_per_ms() * horizon / 1_000.0;
        let n = times.len() as f64;
        prop_assert!(
            n > expected * 0.4 && n < expected * 2.0,
            "n={n} vs expected mean {expected}"
        );
    }
}

proptest! {
    // Whole serve runs are costly; fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A serve run is a pure function of its config: two runs with the same
    /// seed agree on the full Debug rendering, and the result accounting
    /// balances exactly.
    #[test]
    fn serve_runs_are_deterministic_and_balanced(
        seed in 0u64..1_000,
        rate in 1.0f64..12.0,
    ) {
        let cfg = GpuConfig::fermi();
        let wl = ServeWorkload::standard(&cfg);
        let scfg = ServeConfig::paper_default()
            .horizon_us(2_000.0)
            .seed(seed)
            .arrivals(ArrivalProcess::poisson(rate));
        let a = run_serve(&cfg, &wl, &scfg);
        let b = run_serve(&cfg, &wl, &scfg);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        prop_assert_eq!(a.offered, a.admitted + a.shed_queue_full + a.shed_infeasible);
        prop_assert_eq!(a.admitted, a.completed + a.shed_late + a.unfinished);
        prop_assert_eq!(a.completed, a.deadline_met + a.violations);
        let per_tenant: u64 = a.tenants.iter().map(|t| t.offered).sum();
        prop_assert_eq!(per_tenant, a.offered);
    }
}

/// A whale tenant flooding the front door must not starve the minnow: the
/// weighted-fair dispatcher serves queues by weighted attained service, so
/// the minnow's (feasible) requests keep completing under 2x overload.
#[test]
fn heavy_tenant_does_not_starve_light_tenant() {
    let cfg = GpuConfig::fermi();
    let wl = ServeWorkload::skewed(&cfg);
    let rate = 2.0 * wl.saturation_per_ms();
    let scfg = ServeConfig::paper_default()
        .horizon_us(12_000.0)
        .arrivals(ArrivalProcess::poisson(rate));
    let res = run_serve(&cfg, &wl, &scfg);
    let whale = &res.tenants[0];
    let minnow = &res.tenants[1];
    assert!(
        whale.offered > minnow.offered,
        "skew means the whale floods"
    );
    assert!(
        minnow.completed > 0,
        "minnow must keep completing under overload: {res:?}"
    );
    let shed = res.shed_queue_full + res.shed_infeasible + res.shed_late;
    assert!(shed > 0, "2x overload must shed somewhere");
}

/// Golden serving metrics: one pinned configuration whose headline numbers
/// must not drift without an intentional change (Poisson only — the other
/// shapes go through `sin`/`ln` more heavily and this keeps the pin tight).
#[test]
fn golden_serving_metrics_are_stable() {
    let cfg = GpuConfig::fermi();
    let wl = ServeWorkload::standard(&cfg);
    let scfg = ServeConfig::paper_default()
        .horizon_us(4_000.0)
        .arrivals(ArrivalProcess::poisson(4.0));
    let r = run_serve(&cfg, &wl, &scfg);
    assert_eq!(
        (
            r.offered,
            r.admitted,
            r.shed_queue_full,
            r.shed_infeasible,
            r.shed_late,
            r.completed,
            r.deadline_met,
            r.max_queue_depth,
        ),
        (16, 16, 0, 0, 0, 15, 14, 1),
        "pinned serving metrics drifted: {r:?}"
    );
}
