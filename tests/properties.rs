//! Property-based tests over the core data structures and invariants.

use gpu_sim::{
    occupancy, AccessRegion, Engine, GpuConfig, KernelDesc, MemSubsystem, Program, Segment,
};
use proptest::prelude::*;

/// One request against the memory subsystem: either a single access at an
/// address or a bulk (whole-SM) access spread over all partitions.
#[derive(Debug, Clone)]
enum MemOp {
    Access { addr: u64, bytes: u32 },
    Bulk { bytes: u64 },
}

fn arb_mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (any::<u64>(), 1u32..100_000).prop_map(|(addr, bytes)| MemOp::Access { addr, bytes }),
        // Bulk sizes straddle the partition count, the u32 boundary and the
        // per-chunk clamp so the remainder/truncation fixes stay covered.
        (1u64..20_000_000_000).prop_map(|bytes| MemOp::Bulk { bytes }),
    ]
}

/// Random addressed access regions: a few buffers, coarse offsets/lengths
/// so overlaps actually happen, and the three stride shapes (block-shared,
/// disjoint per-block windows, and a small stride that overlaps across
/// blocks and exercises the conservative static path).
fn arb_region() -> impl Strategy<Value = AccessRegion> {
    (
        0u32..3,
        0u64..4,
        1u64..6,
        prop_oneof![
            Just(0u64),
            Just(AccessRegion::COMPAT_BLOCK_STRIDE),
            Just(256u64),
        ],
    )
        .prop_map(|(buf, off, len, stride)| {
            AccessRegion::new(buf, off * 256, len * AccessRegion::BYTES_PER_INST, stride)
        })
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        (1u32..400).prop_map(Segment::compute),
        // Deprecated fixed-buffer constructors: still generated so the
        // compatibility lowering stays covered.
        (1u32..60).prop_map(Segment::load),
        (1u32..60).prop_map(Segment::store),
        (1u32..20).prop_map(Segment::overwrite),
        (1u32..8).prop_map(Segment::atomic),
        // Addressed segments: classification must be derived by dataflow.
        (1u32..60, arb_region()).prop_map(|(n, r)| Segment::load_region(n, r)),
        (1u32..60, arb_region()).prop_map(|(n, r)| Segment::store_region(n, r)),
        (1u32..20, arb_region()).prop_map(|(n, r)| Segment::rmw_region(n, r)),
        (1u32..8, arb_region()).prop_map(|(n, r)| Segment::atomic_region(n, r)),
        (1u32..60).prop_map(|n| Segment::Shared { insts: n }),
        Just(Segment::Barrier),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_segment(), 1..10)
        .prop_filter("needs instructions", |segs| {
            segs.iter().map(|s| u64::from(s.insts())).sum::<u64>() > 0
        })
        .prop_map(Program::new)
}

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (
        arb_program(),
        1u32..64,     // grid
        1u32..8,      // warps per block
        4u32..40,     // regs per thread
        0u32..16_384, // shared memory
        0u64..3,      // jitter bucket
    )
        .prop_map(|(program, grid, warps, regs, smem, jit)| {
            KernelDesc::builder("prop")
                .grid_blocks(grid)
                .threads_per_block(warps * 32)
                .regs_per_thread(regs)
                .shared_mem_per_block(smem)
                .program(program)
                .jitter_pct(jit as f64 * 0.15)
                .build()
                .expect("generated kernels are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Instrumentation preserves semantics-relevant structure: same
    /// instruction count modulo the single protect store, idempotence class
    /// unchanged for idempotent programs, and the pass is itself idempotent.
    #[test]
    fn instrumentation_invariants(p in arb_program()) {
        let out = idem::instrument(&p);
        let protects = out
            .segments()
            .iter()
            .filter(|s| matches!(s, Segment::ProtectStore))
            .count();
        if p.is_idempotent() {
            prop_assert_eq!(&out, &p);
            prop_assert_eq!(protects, 0);
        } else {
            prop_assert_eq!(protects, 1);
            prop_assert_eq!(out.insts_per_warp(), p.insts_per_warp() + 1);
            // The protect store lands immediately before the first breaking
            // segment (per the program-level dataflow mask, which also
            // catches plain stores that alias an earlier read), and no
            // breaking segment precedes it.
            let ix = out
                .segments()
                .iter()
                .position(|s| matches!(s, Segment::ProtectStore))
                .expect("inserted");
            prop_assert!(out.segment_non_idempotent(ix + 1));
            for i in 0..ix {
                prop_assert!(!out.segment_non_idempotent(i), "breaking seg {i} before protect store at {ix}");
            }
        }
        prop_assert_eq!(idem::instrument(&out), out);
    }

    /// The standalone dataflow analysis agrees with the engine-facing mask
    /// computed in `Program::new`, site for site.
    #[test]
    fn analysis_agrees_with_program_mask(p in arb_program()) {
        let report = idem::analyze(&p);
        prop_assert_eq!(report.strict_idempotent, p.is_idempotent());
        let mask_sites: Vec<usize> = (0..p.segments().len())
            .filter(|&i| p.segment_non_idempotent(i))
            .collect();
        let report_sites: Vec<usize> = report.sites.iter().map(|s| s.seg_idx).collect();
        prop_assert_eq!(report_sites, mask_sites);
        prop_assert!(report.idempotent_fraction >= 0.0);
        prop_assert!(report.idempotent_fraction <= 1.0);
        prop_assert!(report.insts_before_first_site <= report.total_insts);
    }

    /// The dynamic flush sanitizer is the oracle for the static analysis:
    /// running any random addressed program to completion under the
    /// sanitizer must produce zero false negatives — if the analysis calls a
    /// program idempotent, no block's footprint may come out dirty. (The
    /// converse can be conservative: `may_overlap` over-approximates for
    /// differing strides, which the report counts as benign.)
    #[test]
    fn sanitizer_never_refutes_static_idempotence(k in arb_kernel(), seed in 0u64..200) {
        let cfg = GpuConfig::tiny();
        let mut e = Engine::with_seed(cfg.clone(), seed);
        e.enable_sanitizer();
        let kid = e.launch_kernel(k.clone());
        for sm in 0..cfg.num_sms {
            e.assign_sm(sm, Some(kid));
        }
        let mut guard = 0;
        while !e.kernel_stats(kid).finished {
            e.run_for(20_000_000);
            guard += 1;
            prop_assert!(guard < 4_000, "kernel did not finish");
        }
        let san = e.take_sanitizer().expect("sanitizer enabled");
        let rep = san.report();
        prop_assert_eq!(rep.blocks_completed, u64::from(k.grid_blocks()));
        prop_assert!(rep.is_clean(), "sanitizer refuted the analysis: {}", rep);
        // Exact agreement when every region shares one block stride: the
        // static intersection then equals the per-block dynamic one, so
        // even the benign-conservatism counter must stay at zero.
        let strides: Vec<u64> = k
            .program()
            .segments()
            .iter()
            .filter_map(|s| s.region().map(|r| r.block_stride))
            .collect();
        if strides.windows(2).all(|w| w[0] == w[1]) {
            prop_assert_eq!(rep.static_dirty_but_clean, 0, "disagreement: {}", rep);
        }
    }

    /// Occupancy respects every architectural limit.
    #[test]
    fn occupancy_within_limits(k in arb_kernel()) {
        let cfg = GpuConfig::fermi();
        let occ = occupancy(&cfg, &k);
        prop_assert!(occ.blocks_per_sm >= 1);
        prop_assert!(occ.blocks_per_sm <= cfg.max_blocks_per_sm);
        let b = occ.blocks_per_sm;
        prop_assert!(b * k.threads_per_block() * k.regs_per_thread() <= cfg.registers_per_sm);
        prop_assert!(b * k.shared_mem_per_block() <= cfg.shared_mem_per_sm
            || k.shared_mem_per_block() == 0);
        prop_assert!(b * k.threads_per_block() <= cfg.max_threads_per_sm);
        // And one more block would break some limit (maximality), unless the
        // architectural cap binds.
        if b < cfg.max_blocks_per_sm {
            let b1 = b + 1;
            let fits = b1 * k.threads_per_block() * k.regs_per_thread() <= cfg.registers_per_sm
                && (k.shared_mem_per_block() == 0
                    || b1 * k.shared_mem_per_block() <= cfg.shared_mem_per_sm)
                && b1 * k.threads_per_block() <= cfg.max_threads_per_sm
                && b1 * k.warps_per_block() <= cfg.max_warps_per_sm;
            prop_assert!(!fits, "occupancy not maximal: {b} vs possible {b1}");
        }
    }

    /// Any kernel run to completion executes exactly its instruction budget
    /// and produces a correct memory image; block accounting balances.
    #[test]
    fn execution_conservation(k in arb_kernel(), seed in 0u64..1000) {
        let cfg = GpuConfig::tiny();
        let mut e = Engine::with_seed(cfg.clone(), seed);
        let kid = e.launch_kernel(k.clone());
        for sm in 0..cfg.num_sms {
            e.assign_sm(sm, Some(kid));
        }
        let mut guard = 0;
        while !e.kernel_stats(kid).finished {
            e.run_for(20_000_000);
            guard += 1;
            prop_assert!(guard < 4_000, "kernel did not finish");
        }
        let s = e.kernel_stats(kid);
        prop_assert_eq!(s.completed_tbs, k.grid_blocks());
        prop_assert_eq!(s.issued_insts, s.completed_insts);
        prop_assert_eq!(s.wasted_flush_insts, 0);
        prop_assert_eq!(e.output_mismatches(kid), 0);
        if k.jitter_pct() == 0.0 {
            prop_assert_eq!(
                s.completed_insts,
                k.insts_per_block() * u64::from(k.grid_blocks())
            );
        }
    }

    /// ANTT and STP are consistent: for two jobs with equal slowdown `s`,
    /// ANTT = s and STP = 2/s.
    #[test]
    fn antt_stp_consistency(s in 1.0f64..50.0, t1 in 1.0f64..1e6, t2 in 1.0f64..1e6) {
        let pairs = [(t1 * s, t1), (t2 * s, t2)];
        prop_assert!((chimera::metrics::antt(&pairs) - s).abs() < 1e-9 * s);
        prop_assert!((chimera::metrics::stp(&pairs) - 2.0 / s).abs() < 1e-9);
    }

    /// Every byte requested from the memory subsystem is eventually served:
    /// the running `total_bytes_served` equals the sum of request sizes after
    /// any interleaving of single and bulk accesses (the bulk path once
    /// dropped the `bytes % partitions` remainder and truncated >4 GiB
    /// chunks).
    #[test]
    fn mem_subsystem_conserves_bytes(
        ops in proptest::collection::vec(arb_mem_op(), 1..40),
        step in 0u64..10_000,
    ) {
        let cfg = GpuConfig::fermi();
        let mut mem = MemSubsystem::new(&cfg);
        let mut now = 0u64;
        let mut requested = 0u64;
        for op in &ops {
            match *op {
                MemOp::Access { addr, bytes } => {
                    let ready = mem.access(now, addr, bytes);
                    prop_assert!(ready >= now + mem.base_latency());
                    requested += u64::from(bytes);
                }
                MemOp::Bulk { bytes } => {
                    let ready = mem.bulk_access(now, bytes);
                    prop_assert!(ready >= now + mem.base_latency());
                    requested += bytes;
                }
            }
            now += step;
        }
        prop_assert_eq!(mem.total_bytes_served(), requested);
    }

    /// Repeated accesses to the same address at non-decreasing times queue
    /// behind each other: the returned ready time strictly increases, and
    /// never lies in the past.
    #[test]
    fn mem_subsystem_ready_times_monotonic(
        addr in any::<u64>(),
        sizes in proptest::collection::vec(1u32..10_000, 2..30),
        step in 0u64..200,
    ) {
        let cfg = GpuConfig::fermi();
        let mut mem = MemSubsystem::new(&cfg);
        let mut now = 0u64;
        let mut last_ready = 0u64;
        for &bytes in &sizes {
            let ready = mem.access(now, addr, bytes);
            prop_assert!(ready > last_ready, "ready time went backwards");
            prop_assert!(ready > now, "ready time not in the future");
            last_ready = ready;
            now += step;
        }
    }

    /// The block-length jitter scaling is deterministic and bounded.
    #[test]
    fn jitter_bounds(seed in 0u64..500, idx in 0u32..2000) {
        let k = KernelDesc::builder("j")
            .grid_blocks(2048)
            .program(Program::new(vec![Segment::compute(1000)]))
            .jitter_pct(0.3)
            .build()
            .unwrap();
        let a = gpu_sim::block::scaled_segments(&k, seed, idx);
        let b = gpu_sim::block::scaled_segments(&k, seed, idx);
        prop_assert_eq!(&a, &b);
        prop_assert!((700..=1300).contains(&a[0]), "jitter out of bounds: {}", a[0]);
    }
}
