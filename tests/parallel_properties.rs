//! Property-based determinism tests for the parallel execution mode.
//!
//! The contract (`PARALLELISM.md`): parallel-mode output is a pure function
//! of the engine seed and configuration — independent of the shard count
//! and of OS thread scheduling. Every case runs the same randomly generated
//! multiprogrammed scenario under the serial calendar engine and under the
//! parallel engine at 1, 2 and 4 shards, and demands byte-identical event
//! streams and statistics. Thread-scheduling independence falls out of
//! repetition: each proptest case re-runs the sharded engine with fresh
//! threads whose interleaving the OS is free to vary.

use gpu_sim::{Engine, Event, ExecMode, GpuConfig, KernelDesc, Program, Segment};
use proptest::prelude::*;

fn arb_segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        (1u32..400).prop_map(Segment::compute),
        (1u32..60).prop_map(Segment::load),
        (1u32..40).prop_map(Segment::store),
        (1u32..12).prop_map(Segment::overwrite),
        (1u32..6).prop_map(Segment::atomic),
        (1u32..60).prop_map(|n| Segment::Shared { insts: n }),
        Just(Segment::Barrier),
    ]
}

fn arb_kernel(tag: &'static str) -> impl Strategy<Value = KernelDesc> {
    (
        proptest::collection::vec(arb_segment(), 1..8).prop_filter("needs instructions", |segs| {
            segs.iter().map(|s| u64::from(s.insts())).sum::<u64>() > 0
        }),
        1u32..48, // grid blocks
        1u32..5,  // warps per block
        8u32..32, // regs per thread
        0u64..3,  // jitter bucket
    )
        .prop_map(move |(segs, grid, warps, regs, jit)| {
            KernelDesc::builder(tag)
                .grid_blocks(grid)
                .threads_per_block(warps * 32)
                .regs_per_thread(regs)
                .program(Program::new(segs))
                .jitter_pct(jit as f64 * 0.15)
                .build()
                .expect("generated kernels are valid")
        })
}

/// Whether `CHIMERA_RACE_CHECK` asks for every run in this suite to carry
/// the shard-race sanitizer (the CI race-sanitized parallel gate sets it).
fn env_race_check() -> bool {
    std::env::var("CHIMERA_RACE_CHECK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Run a two-kernel scenario to completion under `mode`, returning the full
/// event stream and final statistics rendering.
fn run(
    seed: u64,
    num_sms: usize,
    l1_bucket: u8,
    ka: &KernelDesc,
    kb: &KernelDesc,
    mode: ExecMode,
) -> (Vec<Event>, String) {
    run_raced(seed, num_sms, l1_bucket, ka, kb, mode, env_race_check())
}

/// Like [`run`], optionally with the shard-race sanitizer armed; a run that
/// records any Phase-A violation fails outright with the full report.
fn run_raced(
    seed: u64,
    num_sms: usize,
    l1_bucket: u8,
    ka: &KernelDesc,
    kb: &KernelDesc,
    mode: ExecMode,
    race_check: bool,
) -> (Vec<Event>, String) {
    let cfg = GpuConfig {
        num_sms,
        l1_hit_fraction: f64::from(l1_bucket) * 0.45,
        ..GpuConfig::tiny()
    };
    let mut e = Engine::with_seed(cfg, seed);
    e.set_exec_mode(mode);
    e.set_break_on_kernel_finish(true);
    if race_check {
        e.enable_race_sanitizer();
    }
    let a = e.launch_kernel(ka.clone());
    let b = e.launch_kernel(kb.clone());
    for sm in 0..num_sms {
        e.assign_sm(sm, Some(if sm % 2 == 0 { a } else { b }));
    }
    let mut events = Vec::new();
    let mut guard = 0;
    while !(e.kernel_stats(a).finished && e.kernel_stats(b).finished) {
        events.extend(e.run_for(10_000_000));
        guard += 1;
        assert!(guard < 200, "kernels did not finish");
    }
    // Partition stats fold the memory-partition components into the
    // comparison: the component calendar must tick them at identical
    // cycles in every mode for the retirement counters to agree.
    let stats = format!(
        "{:?} | {:?} | {:?} | {:?}",
        e.gpu_stats(),
        e.kernel_stats(a),
        e.kernel_stats(b),
        e.mem_partition_stats()
    );
    if let Some(report) = e.race_sanitizer().map(|s| s.report()) {
        assert!(report.is_clean(), "shard-race violation:\n{report}");
    }
    (events, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed, any shard count, any thread interleaving: byte-identical
    /// events and stats against the serial calendar engine.
    #[test]
    fn parallel_output_is_shard_count_independent(
        seed in 0u64..1_000_000,
        num_sms in 2usize..9,
        l1_bucket in 0u8..3,
        ka in arb_kernel("prop_a"),
        kb in arb_kernel("prop_b"),
    ) {
        let reference = run(seed, num_sms, l1_bucket, &ka, &kb, ExecMode::Event);
        prop_assert!(!reference.0.is_empty(), "scenario produced no events");
        for shards in [1usize, 2, 4] {
            let got = run(seed, num_sms, l1_bucket, &ka, &kb, ExecMode::Parallel { shards });
            prop_assert_eq!(&got.0, &reference.0, "events diverged at {} shards", shards);
            prop_assert_eq!(&got.1, &reference.1, "stats diverged at {} shards", shards);
        }
    }

    /// The shard-race sanitizer is an oracle for the Phase-A purity
    /// contract: on arbitrary kernels and 1/2/4 shards it must never fire,
    /// and arming it must not perturb the byte-identical output. (That the
    /// oracle actually watches traffic — and catches a genuinely racy
    /// component — is pinned by `racy_component_is_caught_in_parallel_mode`
    /// below and the engine's own unit tests.)
    #[test]
    fn race_sanitizer_never_fires_on_generated_kernels(
        seed in 0u64..1_000_000,
        num_sms in 2usize..9,
        l1_bucket in 0u8..3,
        ka in arb_kernel("race_a"),
        kb in arb_kernel("race_b"),
    ) {
        let reference = run_raced(seed, num_sms, l1_bucket, &ka, &kb, ExecMode::Event, false);
        for shards in [1usize, 2, 4] {
            // run_raced fails the case with the full report on any violation.
            let got = run_raced(
                seed, num_sms, l1_bucket, &ka, &kb,
                ExecMode::Parallel { shards }, true,
            );
            prop_assert_eq!(&got.0, &reference.0, "sanitizer perturbed events at {} shards", shards);
            prop_assert_eq!(&got.1, &reference.1, "sanitizer perturbed stats at {} shards", shards);
        }
    }

    /// The component calendar orders heterogeneous components (SMs and
    /// memory partitions) identically to the linear reference scan on
    /// arbitrary kernels: the merge key `(cycle, component_id)` resolves
    /// every tie the same way in both modes.
    #[test]
    fn component_calendar_matches_scan_reference(
        seed in 0u64..1_000_000,
        num_sms in 2usize..7,
        l1_bucket in 0u8..3,
        ka in arb_kernel("cal_a"),
        kb in arb_kernel("cal_b"),
    ) {
        let reference = run(seed, num_sms, l1_bucket, &ka, &kb, ExecMode::Scan);
        let got = run(seed, num_sms, l1_bucket, &ka, &kb, ExecMode::Event);
        prop_assert_eq!(&got.0, &reference.0, "events diverged from scan reference");
        prop_assert_eq!(&got.1, &reference.1, "stats diverged from scan reference");
    }

    /// Two independent engine instances ("devices") produce the same
    /// per-device output whether their step loops are interleaved or run
    /// back to back, in any mode mix: nothing leaks between devices.
    #[test]
    fn two_devices_are_isolated_under_interleaving(
        seed in 0u64..1_000_000,
        num_sms in 2usize..6,
        ka in arb_kernel("dev_a"),
        kb in arb_kernel("dev_b"),
        mode_bucket in 0u8..3,
    ) {
        let mode = match mode_bucket {
            0 => ExecMode::Scan,
            1 => ExecMode::Event,
            _ => ExecMode::Parallel { shards: 2 },
        };
        let solo0 = run(seed, num_sms, 1, &ka, &kb, mode);
        let solo1 = run(seed.wrapping_add(1), num_sms, 1, &ka, &kb, mode);

        // Interleave: step both devices in small lockstep windows.
        let cfg = GpuConfig { num_sms, l1_hit_fraction: 0.45, ..GpuConfig::tiny() };
        let mut devs: Vec<Engine> = [seed, seed.wrapping_add(1)]
            .iter()
            .map(|&s| {
                let mut e = Engine::with_seed(cfg.clone(), s);
                e.set_exec_mode(mode);
                e.set_break_on_kernel_finish(true);
                e
            })
            .collect();
        let mut kids = Vec::new();
        for e in devs.iter_mut() {
            let a = e.launch_kernel(ka.clone());
            let b = e.launch_kernel(kb.clone());
            for sm in 0..num_sms {
                e.assign_sm(sm, Some(if sm % 2 == 0 { a } else { b }));
            }
            kids.push((a, b));
        }
        let mut streams = [Vec::new(), Vec::new()];
        let mut guard = 0;
        while devs.iter().zip(&kids).any(|(e, &(a, b))| {
            !(e.kernel_stats(a).finished && e.kernel_stats(b).finished)
        }) {
            for (d, e) in devs.iter_mut().enumerate() {
                let (a, b) = kids[d];
                // Step only unfinished devices so each one stops at the
                // same cycle as its solo reference run.
                if !(e.kernel_stats(a).finished && e.kernel_stats(b).finished) {
                    streams[d].extend(e.run_for(10_000_000));
                }
            }
            guard += 1;
            prop_assert!(guard < 400, "kernels did not finish");
        }
        for (d, solo) in [&solo0, &solo1].into_iter().enumerate() {
            let (a, b) = kids[d];
            let stats = format!(
                "{:?} | {:?} | {:?} | {:?}",
                devs[d].gpu_stats(),
                devs[d].kernel_stats(a),
                devs[d].kernel_stats(b),
                devs[d].mem_partition_stats()
            );
            prop_assert_eq!(&streams[d], &solo.0, "device {} events diverged", d);
            prop_assert_eq!(&stats, &solo.1, "device {} stats diverged", d);
        }
    }
}

/// The oracle's positive control: a deliberately racy component (a shared
/// cell bumped from inside the pure per-SM tick, bypassing the Interaction
/// replay) must be flagged. Without this, a silent sanitizer and a correct
/// engine are indistinguishable.
#[test]
fn racy_component_is_caught_in_parallel_mode() {
    let cfg = GpuConfig {
        num_sms: 4,
        ..GpuConfig::tiny()
    };
    let mut e = Engine::with_seed(cfg, 42);
    e.set_exec_mode(ExecMode::Parallel { shards: 2 });
    e.enable_race_sanitizer();
    let cell = e.attach_racy_test_cell(&[0, 1, 2, 3]);
    let k = e.launch_kernel(
        KernelDesc::builder("racy")
            .grid_blocks(32)
            .threads_per_block(64)
            .regs_per_thread(16)
            .program(Program::new(vec![Segment::compute(400)]))
            .build()
            .expect("valid kernel"),
    );
    for sm in 0..4 {
        e.assign_sm(sm, Some(k));
    }
    e.run_until(50_000_000);
    assert!(e.kernel_stats(k).finished, "kernel must finish");
    assert!(cell.value() > 0, "pure ticks must have bumped the cell");
    let report = e.race_sanitizer().expect("enabled").report();
    assert!(
        report.violation_count >= 1,
        "the sanitizer must catch the unrouted Phase-A effect:\n{report}"
    );
    assert!(
        report.pure_windows > 0 && report.shared_accesses_checked > 0,
        "a meaningful report proves the oracle watched traffic:\n{report}"
    );
}
