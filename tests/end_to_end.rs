//! End-to-end experiment invariants across the whole stack
//! (workloads → engine → Chimera → metrics).

use chimera::policy::Policy;
use chimera::runner::multiprog::{run_fcfs, run_pair, MultiprogConfig};
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use chimera::runner::solo::run_solo;
use workloads::Suite;

fn quick(cfg: &gpu_sim::GpuConfig, horizon_us: f64) -> PeriodicConfig {
    PeriodicConfig::paper_default(cfg).horizon_us(horizon_us)
}

#[test]
fn periodic_request_accounting() {
    let suite = Suite::standard();
    let cfg = suite.config();
    for policy in Policy::paper_lineup(15.0) {
        let r = run_periodic(cfg, suite.require("NW"), policy, &quick(cfg, 4_200.0));
        // One request per period (1 ms), starting at t = 1 ms.
        assert_eq!(r.requests, 4, "{policy}");
        assert!(r.violations <= r.requests, "{policy}");
        assert_eq!(r.request_log.len(), 4, "{policy}");
        assert!(r.useful_insts > 0, "{policy}");
        for (t, lat, acquired) in &r.request_log {
            assert!(*t >= 1000.0 - 1.0, "{policy}: request at {t}");
            assert!(*acquired <= 15, "{policy}");
            if let Some(l) = lat {
                assert!(*l >= 0.0, "{policy}");
            }
        }
    }
}

#[test]
fn chimera_dominates_singles_on_violations() {
    // Across a diverse trio of benchmarks, Chimera's total violations must
    // not exceed the best single technique's total (the paper's core claim).
    let suite = Suite::standard();
    let cfg = suite.config();
    let mut totals = [0u64; 4]; // switch, drain, flush, chimera
    for name in ["BS", "BT", "LC"] {
        let bench = suite.require(name);
        for (i, policy) in Policy::paper_lineup(15.0).into_iter().enumerate() {
            totals[i] += run_periodic(cfg, bench, policy, &quick(cfg, 6_000.0)).violations;
        }
    }
    let best_single = totals[..3].iter().copied().min().unwrap();
    assert!(
        totals[3] <= best_single,
        "chimera {} vs best single {best_single} (all: {totals:?})",
        totals[3]
    );
}

#[test]
fn oracle_bounds_every_policy_throughput() {
    let suite = Suite::standard();
    let cfg = suite.config();
    let bench = suite.require("ST");
    let oracle = run_periodic(cfg, bench, Policy::Oracle, &quick(cfg, 5_000.0));
    for policy in Policy::paper_lineup(15.0) {
        let r = run_periodic(cfg, bench, policy, &quick(cfg, 5_000.0));
        // Allow 2% slack: scheduling noise can make a policy marginally
        // exceed the oracle on short horizons.
        assert!(
            r.useful_insts as f64 <= oracle.useful_insts as f64 * 1.02,
            "{policy}: {} > oracle {}",
            r.useful_insts,
            oracle.useful_insts
        );
    }
}

#[test]
fn multiprogramming_beats_fcfs_for_lud() {
    let suite = Suite::with_options(
        gpu_sim::GpuConfig::fermi(),
        workloads::SuiteOptions {
            instrumented: true,
            grid_scale: 0.3,
            lud_iterations: 6,
        },
    );
    let cfg = suite.config();
    let mcfg = MultiprogConfig::paper_default()
        .budget_insts(600_000)
        .horizon_us(300_000.0);
    let lud = suite.require("LUD");
    let other = suite.require("ST");
    let lud_solo = run_solo(
        cfg,
        lud,
        Some(mcfg.budget_insts),
        cfg.us_to_cycles(100_000.0),
        42,
    );
    let fcfs = run_fcfs(cfg, lud, other, &mcfg);
    let chim = run_pair(cfg, lud, other, Policy::chimera_us(30.0), &mcfg);
    let f = fcfs.jobs[0].t_multi.expect("FCFS measured") as f64;
    let c = chim.jobs[0].t_multi.expect("pair measured") as f64;
    assert!(
        f > 2.0 * c,
        "FCFS should slow LUD at least 2x vs Chimera: fcfs={f}, chimera={c}"
    );
    // Turnarounds are never better than solo.
    assert!(
        c >= lud_solo.cycles as f64 * 0.98,
        "multi faster than solo?"
    );
    assert!(chim.preemptions > 0);
}

#[test]
fn strict_condition_is_never_better_than_relaxed() {
    let relaxed_suite = Suite::standard();
    let strict_suite = Suite::strict();
    let cfg = relaxed_suite.config();
    for name in ["BT", "NW", "HS"] {
        let relaxed = run_periodic(
            cfg,
            relaxed_suite.require(name),
            Policy::Flush,
            &quick(cfg, 5_000.0),
        );
        let strict_pc = quick(cfg, 5_000.0).strict_idem(true);
        let strict = run_periodic(cfg, strict_suite.require(name), Policy::Flush, &strict_pc);
        assert!(
            strict.violations >= relaxed.violations,
            "{name}: strict {} < relaxed {}",
            strict.violations,
            relaxed.violations
        );
    }
}

#[test]
fn runners_are_deterministic() {
    let suite = Suite::standard();
    let cfg = suite.config();
    let run = || {
        let r = run_periodic(
            cfg,
            suite.require("FWT"),
            Policy::chimera_us(15.0),
            &quick(cfg, 4_000.0),
        );
        (r.violations, r.useful_insts, r.requests)
    };
    assert_eq!(run(), run());
}
