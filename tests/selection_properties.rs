//! Property-based tests over Algorithm 1 (preemption selection).

use chimera::cost::KernelObs;
use chimera::select::{select_preemptions, SelectionRequest};
use gpu_sim::{GpuConfig, SmSnapshot, TbSnapshotInfo, Technique};
use proptest::prelude::*;

fn arb_block(index: u32) -> impl Strategy<Value = TbSnapshotInfo> {
    (0u64..2000, any::<bool>()).prop_map(move |(executed, past)| TbSnapshotInfo {
        index,
        executed_insts: executed,
        elapsed_cycles: executed * 16,
        past_idem_point: past,
    })
}

fn arb_snapshot(sm: usize) -> impl Strategy<Value = SmSnapshot> {
    proptest::collection::vec(any::<bool>(), 1..8).prop_flat_map(move |mask| {
        let blocks: Vec<_> = mask
            .iter()
            .enumerate()
            .map(|(i, _)| arb_block((sm * 8 + i) as u32))
            .collect();
        blocks.prop_map(move |blocks| SmSnapshot {
            sm,
            kernel: None,
            blocks,
        })
    })
}

fn arb_snapshots() -> impl Strategy<Value = Vec<SmSnapshot>> {
    (1usize..10).prop_flat_map(|n| (0..n).map(arb_snapshot).collect::<Vec<_>>())
}

fn arb_request() -> impl Strategy<Value = SelectionRequest> {
    (
        1u64..40_000,
        1usize..8,
        1u64..128 * 1024,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(limit, num, ctx, with_obs, flush_ok)| SelectionRequest {
            limit_cycles: limit,
            num_preempts: num,
            ctx_bytes_per_tb: ctx,
            obs: if with_obs {
                KernelObs {
                    avg_tb_insts: Some(1000.0),
                    avg_tb_cpi: Some(16.0),
                    std_tb_insts: 40.0,
                    max_tb_insts: 1100,
                    quantile_tb_insts: None,
                }
            } else {
                KernelObs::default()
            },
            flush_allowed: flush_ok,
            estimator: Default::default(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Structural invariants of every selection: plans cover each resident
    /// block exactly once, never flush past-idempotence blocks, never select
    /// an SM twice, and never exceed the request size.
    #[test]
    fn selection_invariants(req in arb_request(), snaps in arb_snapshots()) {
        let cfg = GpuConfig::fermi();
        let plans = select_preemptions(&cfg, &req, &snaps);
        let nonempty = snaps.iter().filter(|s| !s.blocks.is_empty()).count();
        prop_assert!(plans.len() <= req.num_preempts);
        prop_assert!(plans.len() <= nonempty);
        prop_assert_eq!(plans.len(), req.num_preempts.min(nonempty));
        let mut seen_sms = std::collections::HashSet::new();
        for p in &plans {
            prop_assert!(seen_sms.insert(p.sm), "SM selected twice");
            let snap = snaps.iter().find(|s| s.sm == p.sm).expect("plan for known SM");
            prop_assert_eq!(p.plan.entries.len(), snap.blocks.len());
            for b in &snap.blocks {
                let t = p.plan.technique_for(b.index);
                prop_assert!(t.is_some(), "block {} uncovered", b.index);
                if b.past_idem_point || !req.flush_allowed {
                    prop_assert_ne!(t, Some(Technique::Flush));
                }
            }
            prop_assert!(!p.plan.allow_unsafe_flush);
        }
    }

    /// Monotonicity: for a fixed SM, relaxing the latency limit never
    /// increases the plan's estimated overhead — each block's choice is the
    /// min-overhead technique over a candidate set that only grows with the
    /// limit. (Across *different* SMs the selected plan's overhead may rise
    /// at the feasibility boundary: a tight limit that no SM meets falls
    /// back to the lowest-latency SM, which may be cheap.)
    #[test]
    fn looser_limits_never_cost_more_per_sm(snap in arb_snapshot(0)) {
        let cfg = GpuConfig::fermi();
        let base = SelectionRequest {
            limit_cycles: 0,
            num_preempts: 1,
            ctx_bytes_per_tb: 24 * 1024,
            obs: KernelObs {
                avg_tb_insts: Some(1000.0),
                avg_tb_cpi: Some(16.0),
                std_tb_insts: 0.0,
                max_tb_insts: 1000,
                quantile_tb_insts: None,
            },
            flush_allowed: true,
            estimator: Default::default(),
        };
        let snaps = vec![snap];
        let mut prev = u64::MAX;
        for limit_us in [2.0, 5.0, 15.0, 50.0, 1000.0] {
            let req = SelectionRequest { limit_cycles: cfg.us_to_cycles(limit_us), ..base };
            let plans = select_preemptions(&cfg, &req, &snaps);
            if let Some(p) = plans.first() {
                prop_assert!(
                    p.est_overhead_insts <= prev,
                    "overhead rose from {prev} to {} at {limit_us}us",
                    p.est_overhead_insts
                );
                prev = p.est_overhead_insts;
            }
        }
    }

    /// With a generous limit and statistics available, a nearly-finished
    /// block is always drained, never flushed (Figure 4's right edge).
    #[test]
    fn finished_blocks_drain(executed in 995u64..1000) {
        let cfg = GpuConfig::fermi();
        let snap = SmSnapshot {
            sm: 0,
            kernel: None,
            blocks: vec![TbSnapshotInfo {
                index: 0,
                executed_insts: executed,
                elapsed_cycles: executed * 16,
                past_idem_point: false,
            }],
        };
        let req = SelectionRequest {
            limit_cycles: cfg.us_to_cycles(1000.0),
            num_preempts: 1,
            ctx_bytes_per_tb: 24 * 1024,
            obs: KernelObs {
                avg_tb_insts: Some(1000.0),
                avg_tb_cpi: Some(16.0),
                std_tb_insts: 0.0,
                max_tb_insts: 1000,
                quantile_tb_insts: None,
            },
            flush_allowed: true,
            estimator: Default::default(),
        };
        let plans = select_preemptions(&cfg, &req, &[snap]);
        prop_assert_eq!(plans[0].plan.technique_for(0), Some(Technique::Drain));
    }
}
