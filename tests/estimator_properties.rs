//! Property-based tests over the online cost estimator: the P² quantile
//! trackers must converge on known distributions, stay deterministic, and
//! only ever *sharpen* the drain bound Algorithm 1 sees (never loosen it
//! past the static §4.1 headroom).

use chimera::cost::{EstimatorConfig, KernelObs, ObsBank, P2Quantile};
use proptest::prelude::*;

/// Deterministic LCG so every case is a pure function of its seed.
fn lcg_stream(seed: u64, n: usize) -> Vec<f64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64 // uniform in [0, 1)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On a uniform stream over [lo, lo+span), the P² estimate of quantile q
    /// converges to lo + q·span within a coarse tolerance.
    #[test]
    fn p2_converges_on_uniform(seed in 1u64..1_000_000, q in 0.05f64..0.95,
                               lo in 0.0f64..1000.0, span in 100.0f64..10_000.0) {
        let mut tracker = P2Quantile::new(q);
        for u in lcg_stream(seed, 4000) {
            tracker.observe(lo + u * span);
        }
        let est = tracker.estimate().expect("4000 samples is enough");
        let expect = lo + q * span;
        // P² is an approximation; 10% of the span is the coarse bound that
        // holds across seeds and quantiles.
        prop_assert!(
            (est - expect).abs() <= span * 0.10,
            "q={q}: estimate {est} vs expected {expect} (span {span})"
        );
    }

    /// On a constant stream every quantile is that constant, exactly.
    #[test]
    fn p2_is_exact_on_constant(q in 0.05f64..0.95, v in 1.0f64..1e6, n in 5usize..500) {
        let mut tracker = P2Quantile::new(q);
        for _ in 0..n {
            tracker.observe(v);
        }
        prop_assert_eq!(tracker.estimate(), Some(v));
    }

    /// Two trackers fed the same stream agree bit-for-bit, and a tracker is
    /// `Copy`-safe: a snapshot taken mid-stream and replayed forward matches
    /// the original. This is the per-tracker core of the runner-level
    /// determinism guarantee (`--jobs`-independence).
    #[test]
    fn p2_is_deterministic_and_copy_replayable(seed in 1u64..1_000_000, q in 0.05f64..0.95) {
        let stream = lcg_stream(seed, 600);
        let mut a = P2Quantile::new(q);
        let mut b = P2Quantile::new(q);
        let mut snapshot = None;
        for (i, &x) in stream.iter().enumerate() {
            a.observe(x);
            b.observe(x);
            if i == 299 {
                snapshot = Some(a);
            }
        }
        prop_assert_eq!(a.estimate(), b.estimate());
        let mut replay = snapshot.expect("stream has 600 samples");
        for &x in &stream[300..] {
            replay.observe(x);
        }
        prop_assert_eq!(replay.estimate(), a.estimate());
    }

    /// The online estimator only replaces the static bound once warm, and
    /// the quantile it exposes never exceeds the observed maximum — so the
    /// drain bound Algorithm 1 uses is always within the static headroom.
    #[test]
    fn online_quantile_stays_within_static_headroom(seed in 1u64..1_000_000, q in 0.5f64..1.0) {
        let est = EstimatorConfig::online(q);
        let mut bank = ObsBank::with_estimator(est);
        let stream = lcg_stream(seed, 200);
        let mut max_insts = 0u64;
        for &u in &stream {
            let insts = 100 + (u * 10_000.0) as u64;
            max_insts = max_insts.max(insts);
            bank.record_tb("k", insts, insts * 16);
        }
        let obs: KernelObs = bank.obs("k");
        let quant = obs.quantile_tb_insts.expect("200 samples is warm");
        prop_assert!(quant <= max_insts as f64 + 1e-9,
            "quantile {quant} above observed max {max_insts}");
        prop_assert!(quant > 0.0);
        // Static mode must strip the quantile: the paper's model unchanged.
        let stripped = obs.for_estimator(&EstimatorConfig::default());
        prop_assert_eq!(stripped.quantile_tb_insts, None);
    }
}
