//! Golden-file and round-trip tests for the observability subsystem: a
//! fixed-seed 2-SM scenario must render to a byte-stable Chrome-trace JSON
//! (`tests/golden/trace_tiny.json`), and the exporter's output must survive a
//! parse-back validation.
//!
//! Regenerate the golden file after an intentional schema change with
//! `UPDATE_GOLDEN=1 cargo test --test observability`.

use chimera::cost::KernelObs;
use chimera::select::{select_preemptions, SelectionRequest};
use gpu_sim::trace::{chrome_trace_json, validate_chrome_trace};
use gpu_sim::{Engine, GpuConfig, KernelDesc, Program, Segment};

/// The scenario behind the golden file: a 12-block kernel on the 2-SM tiny
/// config, preempted once on SM 0 by Algorithm 1 (so the trace contains
/// decisions, a preemption window, and all three block-exit flavours), then
/// run to completion.
fn golden_engine() -> Engine {
    let cfg = GpuConfig::tiny();
    let mut engine = Engine::with_seed(cfg.clone(), 7);
    engine.enable_event_log(1 << 14);
    let k = engine.launch_kernel(
        KernelDesc::builder("golden")
            .grid_blocks(12)
            .threads_per_block(64)
            .regs_per_thread(16)
            .program(Program::new(vec![Segment::load(8), Segment::compute(400)]))
            .build()
            .expect("valid kernel"),
    );
    engine.assign_sm(0, Some(k));
    engine.assign_sm(1, Some(k));
    engine.run_for(20_000);
    let limit = cfg.us_to_cycles(15.0);
    let req = SelectionRequest {
        limit_cycles: limit,
        num_preempts: 1,
        ctx_bytes_per_tb: 24 * 1024,
        obs: KernelObs {
            avg_tb_insts: Some(500.0),
            avg_tb_cpi: Some(16.0),
            std_tb_insts: 20.0,
            max_tb_insts: 520,
            quantile_tb_insts: None,
        },
        flush_allowed: true,
        estimator: Default::default(),
    };
    let snapshots = vec![engine.sm_snapshot(0)];
    let plans = select_preemptions(&cfg, &req, &snapshots);
    assert!(!plans.is_empty(), "SM 0 has resident blocks to preempt");
    for plan in &plans {
        for d in &plan.decisions {
            engine.record_decision(plan.sm, k, limit, *d);
        }
        engine
            .preempt_sm(plan.sm, &plan.plan)
            .expect("plan applies");
    }
    engine.run_until(2_000_000);
    assert!(engine.kernel_stats(k).finished, "scenario must complete");
    engine
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_tiny.json")
}

#[test]
fn fixed_seed_trace_matches_golden_file() {
    let json = chrome_trace_json(&golden_engine()).expect("log enabled");
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file exists; regenerate with UPDATE_GOLDEN=1");
    assert!(
        json == golden,
        "trace bytes diverged from tests/golden/trace_tiny.json \
         ({} vs {} bytes); if the schema change is intentional, regenerate \
         with UPDATE_GOLDEN=1 cargo test --test observability",
        json.len(),
        golden.len(),
    );
}

#[test]
fn golden_scenario_is_deterministic() {
    let a = chrome_trace_json(&golden_engine()).unwrap();
    let b = chrome_trace_json(&golden_engine()).unwrap();
    assert!(a == b, "same seed must give byte-identical traces");
}

#[test]
fn golden_trace_parses_back_and_is_sorted() {
    let engine = golden_engine();
    let json = chrome_trace_json(&engine).unwrap();
    // validate_chrome_trace rejects out-of-order timestamps, so a successful
    // parse also pins the exporter's sorting (the property that makes the
    // bytes independent of event arrival order).
    let summary = validate_chrome_trace(&json).expect("exporter output is valid");
    assert_eq!(summary.metadata, 3, "process_name + one thread_name per SM");
    assert_eq!(summary.tracks, 2, "both SMs saw activity");
    // 12 first-dispatch residencies + 1 preemption window, plus one fresh
    // span per flushed block that restarts from scratch.
    assert!(summary.spans > 12, "spans: {}", summary.spans);
    assert!(summary.instants >= 3, "preempt begin/end + decisions");
    assert!(summary.max_ts_us > 0.0);
}

#[test]
fn decisions_appear_with_their_estimates() {
    let engine = golden_engine();
    let log = engine.event_log().unwrap();
    let decisions: Vec<_> = log.iter().filter(|e| e.kind() == "decision").collect();
    assert!(!decisions.is_empty());
    // Every decision line carries the per-technique estimate table.
    for line in log.to_json_lines().lines() {
        if line.starts_with("{\"kind\":\"decision\"") {
            assert!(line.contains("\"est\":{"), "line: {line}");
            assert!(line.contains("\"switch\":"), "line: {line}");
            assert!(line.contains("\"drain\":"), "line: {line}");
            assert!(line.contains("\"flush\":"), "line: {line}");
            assert!(line.contains("\"slack_cycles\":"), "line: {line}");
            assert!(line.contains("\"chosen\":"), "line: {line}");
        }
    }
}

#[test]
fn event_log_lines_are_byte_stable() {
    let a = golden_engine().event_log().unwrap().to_json_lines();
    let b = golden_engine().event_log().unwrap().to_json_lines();
    assert!(a == b);
    assert!(a.lines().all(|l| l.starts_with("{\"kind\":\"")));
}

#[test]
fn disabled_log_changes_nothing() {
    // The same scenario without the event log: identical simulation results
    // (tracing is observation-only) and no exporter output.
    let run = |traced: bool| {
        let cfg = GpuConfig::tiny();
        let mut engine = Engine::with_seed(cfg, 7);
        if traced {
            engine.enable_event_log(1 << 14);
        }
        let k = engine.launch_kernel(
            KernelDesc::builder("golden")
                .grid_blocks(12)
                .threads_per_block(64)
                .regs_per_thread(16)
                .program(Program::new(vec![Segment::load(8), Segment::compute(400)]))
                .build()
                .unwrap(),
        );
        engine.assign_sm(0, Some(k));
        engine.assign_sm(1, Some(k));
        engine.run_until(2_000_000);
        let s = engine.kernel_stats(k);
        (s.finished, s.issued_insts, engine.cycle(), traced)
    };
    let (f1, i1, c1, _) = run(true);
    let (f2, i2, c2, _) = run(false);
    assert_eq!(
        (f1, i1, c1),
        (f2, i2, c2),
        "tracing must not perturb timing"
    );
    let cfg = GpuConfig::tiny();
    let engine = Engine::with_seed(cfg, 7);
    assert!(chrome_trace_json(&engine).is_none());
}
