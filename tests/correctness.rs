//! Cross-crate semantic correctness: no matter how aggressively a kernel is
//! preempted with *safe* plans, its functional memory image must equal a
//! preemption-free execution.

use gpu_sim::{Engine, Event, GpuConfig, KernelDesc, Program, Segment, SmPreemptPlan, Technique};

fn kernels_under_test() -> Vec<KernelDesc> {
    let k = |name: &str, segs: Vec<Segment>| {
        KernelDesc::builder(name)
            .grid_blocks(24)
            .threads_per_block(64)
            .regs_per_thread(16)
            .shared_mem_per_block(2048)
            .program(Program::new(segs))
            .jitter_pct(0.2)
            .build()
            .expect("valid kernel")
    };
    vec![
        k(
            "pure",
            vec![Segment::load(8), Segment::compute(600), Segment::store(8)],
        ),
        k(
            "barriered",
            vec![
                Segment::load(8),
                Segment::compute(300),
                Segment::Barrier,
                Segment::compute(300),
                Segment::store(8),
            ],
        ),
        idem::instrument_kernel(&k(
            "late-atomic",
            vec![Segment::compute(500), Segment::atomic(2), Segment::store(4)],
        )),
        idem::instrument_kernel(&k(
            "late-overwrite",
            vec![
                Segment::load(8),
                Segment::compute(500),
                Segment::overwrite(6),
            ],
        )),
    ]
}

/// Storm a kernel with repeated preemptions of the given technique on every
/// SM in turn, then let it finish and verify the output.
fn storm(technique: Technique, kernel: &KernelDesc) {
    let cfg = GpuConfig::tiny();
    let mut e = Engine::with_seed(cfg.clone(), 9);
    let kid = e.launch_kernel(kernel.clone());
    for sm in 0..cfg.num_sms {
        e.assign_sm(sm, Some(kid));
    }
    let mut preempts = 0;
    for round in 0..60 {
        e.run_for(3_000 + round * 37);
        if e.kernel_stats(kid).finished {
            break;
        }
        let sm = (round % cfg.num_sms as u64) as usize;
        if e.sm_is_preempting(sm) || e.sm_resident_count(sm) == 0 {
            continue;
        }
        // Only flush blocks that are still idempotent; others drain.
        let snap = e.sm_snapshot(sm);
        let entries: Vec<(u32, Technique)> = snap
            .blocks
            .iter()
            .map(|b| {
                let t = if technique == Technique::Flush && b.past_idem_point {
                    Technique::Drain
                } else {
                    technique
                };
                (b.index, t)
            })
            .collect();
        let plan = SmPreemptPlan {
            entries,
            allow_unsafe_flush: false,
        };
        e.preempt_sm(sm, &plan).expect("safe plan accepted");
        preempts += 1;
        // Collect the completion and reassign the SM.
        let mut done = e.sm_is_preempting(sm);
        while done {
            for ev in e.run_for(50_000) {
                if matches!(ev, Event::PreemptionCompleted { sm: s, .. } if s == sm) {
                    done = false;
                }
            }
            if e.cycle() > 3_000_000_000 {
                panic!("preemption never completed");
            }
        }
        e.assign_sm(sm, Some(kid));
    }
    // Finish the kernel.
    let mut guard = 0;
    while !e.kernel_stats(kid).finished {
        e.run_for(1_000_000);
        guard += 1;
        assert!(guard < 10_000, "kernel failed to finish under {technique}");
    }
    assert!(preempts > 0, "storm must actually preempt");
    assert_eq!(
        e.output_mismatches(kid),
        0,
        "{} corrupted by {technique} storm",
        kernel.name()
    );
}

#[test]
fn flush_storm_preserves_semantics() {
    for k in kernels_under_test() {
        storm(Technique::Flush, &k);
    }
}

#[test]
fn switch_storm_preserves_semantics() {
    for k in kernels_under_test() {
        storm(Technique::Switch, &k);
    }
}

#[test]
fn drain_storm_preserves_semantics() {
    for k in kernels_under_test() {
        storm(Technique::Drain, &k);
    }
}

#[test]
fn mixed_storm_preserves_semantics() {
    // Alternate techniques per round.
    let cfg = GpuConfig::tiny();
    for kernel in kernels_under_test() {
        let mut e = Engine::with_seed(cfg.clone(), 3);
        let kid = e.launch_kernel(kernel.clone());
        for sm in 0..cfg.num_sms {
            e.assign_sm(sm, Some(kid));
        }
        for round in 0..40u64 {
            e.run_for(5_000);
            if e.kernel_stats(kid).finished {
                break;
            }
            let sm = (round % cfg.num_sms as u64) as usize;
            if e.sm_is_preempting(sm) || e.sm_resident_count(sm) == 0 {
                continue;
            }
            let snap = e.sm_snapshot(sm);
            let entries: Vec<(u32, Technique)> = snap
                .blocks
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let t = match i % 3 {
                        0 if !b.past_idem_point => Technique::Flush,
                        1 => Technique::Switch,
                        _ => Technique::Drain,
                    };
                    (b.index, t)
                })
                .collect();
            e.preempt_sm(
                sm,
                &SmPreemptPlan {
                    entries,
                    allow_unsafe_flush: false,
                },
            )
            .expect("safe mixed plan");
            // Let the preemption settle, then hand the SM back.
            e.run_for(400_000);
            if !e.sm_is_preempting(sm) {
                e.assign_sm(sm, Some(kid));
            }
        }
        let mut guard = 0;
        while !e.kernel_stats(kid).finished {
            // Reclaim any SM that finished preempting meanwhile.
            for sm in 0..cfg.num_sms {
                if !e.sm_is_preempting(sm) && e.sm_assigned(sm).is_none() {
                    e.assign_sm(sm, Some(kid));
                }
            }
            e.run_for(1_000_000);
            guard += 1;
            assert!(guard < 10_000, "{} never finished", kernel.name());
        }
        assert_eq!(e.output_mismatches(kid), 0, "{} corrupted", kernel.name());
    }
}

#[test]
fn unsafe_flush_is_detected_not_silent() {
    // The engine must refuse, and forcing must visibly corrupt.
    let kernel = idem::instrument_kernel(
        &KernelDesc::builder("unsafe")
            .grid_blocks(4)
            .threads_per_block(32)
            .program(Program::new(vec![
                Segment::atomic(2),
                Segment::compute(30_000),
            ]))
            .build()
            .unwrap(),
    );
    let cfg = GpuConfig::tiny();
    let mut e = Engine::with_seed(cfg.clone(), 1);
    let kid = e.launch_kernel(kernel);
    e.assign_sm(0, Some(kid));
    e.run_until(400_000);
    let snap = e.sm_snapshot(0);
    assert!(
        snap.blocks.iter().any(|b| b.past_idem_point),
        "atomic executed by now"
    );
    let plan = SmPreemptPlan::uniform(e.sm_resident_indices(0), Technique::Flush);
    assert!(e.preempt_sm(0, &plan).is_err());
    let forced = SmPreemptPlan {
        allow_unsafe_flush: true,
        ..plan
    };
    e.preempt_sm(0, &forced).unwrap();
    e.assign_sm(0, Some(kid));
    while !e.kernel_stats(kid).finished {
        e.run_for(5_000_000);
    }
    assert!(e.output_mismatches(kid) > 0);
}
