//! Differential determinism tests for the engine's execution modes.
//!
//! The engine runs in one of three modes (see `gpu_sim::ExecMode` and
//! `PARALLELISM.md`): the legacy linear min-scan reference, the binary-heap
//! event calendar, and the sharded parallel engine that advances SM shards
//! on worker threads between epoch barriers. These tests drive a
//! preemption-heavy multiprogrammed scenario through all three and demand
//! *byte-identical* observable behaviour: the event stream, the final
//! statistics, and the Chrome-trace export — including mid-run mode
//! toggles, shard-count changes, and preemptions landing on epoch
//! boundaries. They also pin the regression fixed in the PR 4 accounting
//! audit: re-preempted (switched-out, resumed, then re-preempted) blocks
//! must not double-release their dispatch slot.

use gpu_sim::trace::chrome_trace_json;
use gpu_sim::{
    Engine, Event, ExecMode, GpuConfig, KernelDesc, Program, Segment, SmPreemptPlan, Technique,
};

fn four_sm_config() -> GpuConfig {
    GpuConfig {
        num_sms: 4,
        ..GpuConfig::tiny()
    }
}

fn compute_kernel() -> KernelDesc {
    KernelDesc::builder("eq_compute")
        .grid_blocks(64)
        .threads_per_block(64)
        .regs_per_thread(16)
        .program(Program::new(vec![
            Segment::load(6),
            Segment::compute(600),
            Segment::store(4),
        ]))
        .jitter_pct(0.2)
        .build()
        .expect("valid kernel")
}

fn memory_kernel() -> KernelDesc {
    KernelDesc::builder("eq_memory")
        .grid_blocks(48)
        .threads_per_block(64)
        .regs_per_thread(20)
        .program(Program::new(vec![
            Segment::load(40),
            Segment::compute(80),
            Segment::Barrier,
            Segment::load(30),
            Segment::overwrite(6),
        ]))
        .build()
        .expect("valid kernel")
}

/// When `CHIMERA_RACE_CHECK` is set (the CI race-sanitized parallel gate),
/// every engine in this suite carries the shard-race sanitizer; a recorded
/// Phase-A violation fails the test with the full report.
fn arm_race_check(e: &mut Engine) {
    if std::env::var("CHIMERA_RACE_CHECK").is_ok_and(|v| !v.is_empty() && v != "0") {
        e.enable_race_sanitizer();
    }
}

fn assert_race_clean(e: &Engine) {
    if let Some(report) = e.race_sanitizer().map(|s| s.report()) {
        assert!(report.is_clean(), "shard-race violation:\n{report}");
    }
}

fn switch_sm(e: &mut Engine, sm: usize) {
    if e.sm_resident_count(sm) > 0 && !e.sm_is_preempting(sm) {
        let plan = SmPreemptPlan::uniform(e.sm_resident_indices(sm), Technique::Switch);
        e.preempt_sm(sm, &plan).expect("switch is always legal");
    }
}

/// A preemption-heavy multiprogrammed run: two kernels on a 4-SM split,
/// with SMs 0–1 ping-ponged between them by context-switch preemptions so
/// blocks get switched out, resumed, and re-preempted repeatedly.
fn run_scenario(mode: ExecMode) -> (Vec<Event>, String, String) {
    let cfg = four_sm_config();
    let mut e = Engine::with_seed(cfg.clone(), 11);
    e.set_exec_mode(mode);
    arm_race_check(&mut e);
    e.enable_event_log(1 << 14);
    let ka = e.launch_kernel(compute_kernel());
    let kb = e.launch_kernel(memory_kernel());
    e.assign_sm(0, Some(ka));
    e.assign_sm(1, Some(ka));
    e.assign_sm(2, Some(kb));
    e.assign_sm(3, Some(kb));
    let mut events = Vec::new();
    for round in 0..24 {
        events.extend(e.run_for(5_000));
        match round % 4 {
            1 => {
                for sm in 0..2 {
                    switch_sm(&mut e, sm);
                    e.assign_sm(sm, Some(kb));
                }
            }
            3 => {
                for sm in 0..2 {
                    switch_sm(&mut e, sm);
                    e.assign_sm(sm, Some(ka));
                }
            }
            _ => {}
        }
    }
    events.extend(e.run_until(e.cycle() + 3_000_000));
    // Partition stats pull the memory-partition components into the
    // byte-identity check: the calendar must tick them at the same cycles
    // in every mode for the retirement counters to agree.
    let stats = format!(
        "{:?} | {:?} | {:?} | {:?}",
        e.gpu_stats(),
        e.kernel_stats(ka),
        e.kernel_stats(kb),
        e.mem_partition_stats()
    );
    let trace = chrome_trace_json(&e).expect("event log enabled");
    assert_race_clean(&e);
    (events, stats, trace)
}

#[test]
fn heap_and_scan_schedulers_are_equivalent() {
    let (ev_heap, stats_heap, trace_heap) = run_scenario(ExecMode::Event);
    let (ev_scan, stats_scan, trace_scan) = run_scenario(ExecMode::Scan);
    assert!(
        !ev_heap.is_empty(),
        "scenario must produce events for the comparison to mean anything"
    );
    assert_eq!(ev_heap, ev_scan, "event streams diverged");
    assert_eq!(stats_heap, stats_scan, "final statistics diverged");
    assert!(
        trace_heap == trace_scan,
        "chrome traces diverged ({} vs {} bytes)",
        trace_heap.len(),
        trace_scan.len()
    );
}

#[test]
fn three_way_mode_equivalence() {
    // Scan vs heap vs parallel (at several shard counts) on the same
    // preemption-heavy scenario: events, stats and traces byte-identical.
    let reference = run_scenario(ExecMode::Event);
    assert!(!reference.0.is_empty(), "scenario must produce events");
    for mode in [
        ExecMode::Scan,
        ExecMode::Parallel { shards: 1 },
        ExecMode::Parallel { shards: 2 },
        ExecMode::Parallel { shards: 4 },
    ] {
        let got = run_scenario(mode);
        assert_eq!(got.0, reference.0, "event streams diverged in {mode:?}");
        assert_eq!(got.1, reference.1, "statistics diverged in {mode:?}");
        assert!(
            got.2 == reference.2,
            "chrome traces diverged in {mode:?} ({} vs {} bytes)",
            got.2.len(),
            reference.2.len()
        );
    }
}

#[test]
fn scheduler_can_be_toggled_mid_run() {
    // Toggling between modes at window boundaries (exercising the calendar
    // rebuild and the epoch machinery mid-flight) must not change results.
    let cfg = four_sm_config();
    let run = |schedule: &[ExecMode]| {
        let mut e = Engine::with_seed(cfg.clone(), 5);
        arm_race_check(&mut e);
        let k = e.launch_kernel(compute_kernel());
        for sm in 0..cfg.num_sms {
            e.assign_sm(sm, Some(k));
        }
        let mut events = Vec::new();
        for round in 0..10 {
            if !schedule.is_empty() {
                e.set_exec_mode(schedule[round % schedule.len()]);
            }
            events.extend(e.run_for(20_000));
        }
        e.set_exec_mode(ExecMode::Event);
        while !e.kernel_stats(k).finished {
            events.extend(e.run_for(1_000_000));
        }
        assert_race_clean(&e);
        (events, format!("{:?}", e.kernel_stats(k)))
    };
    let reference = run(&[]);
    assert_eq!(run(&[ExecMode::Scan, ExecMode::Event]), reference);
    assert_eq!(
        run(&[
            ExecMode::Parallel { shards: 2 },
            ExecMode::Scan,
            ExecMode::Parallel { shards: 4 },
            ExecMode::Event,
        ]),
        reference
    );
}

#[test]
fn parallel_mode_breaks_on_kernel_finish_identically() {
    // `run_until` must return early at the kernel-finish cycle with the
    // machine in the same state in every mode: the parallel engine bounds
    // its pure phase strictly below any possible finish cycle, so no shard
    // runs past the break point.
    let cfg = four_sm_config();
    let run = |mode: ExecMode| {
        let mut e = Engine::with_seed(cfg.clone(), 9);
        e.set_exec_mode(mode);
        arm_race_check(&mut e);
        e.set_break_on_kernel_finish(true);
        let ka = e.launch_kernel(compute_kernel());
        let kb = e.launch_kernel(memory_kernel());
        for sm in 0..2 {
            e.assign_sm(sm, Some(ka));
        }
        for sm in 2..4 {
            e.assign_sm(sm, Some(kb));
        }
        let mut log = Vec::new();
        let mut guard = 0;
        while !(e.kernel_stats(ka).finished && e.kernel_stats(kb).finished) {
            let events = e.run_for(50_000_000);
            log.push((e.cycle(), events));
            guard += 1;
            assert!(guard < 100, "kernels did not finish");
        }
        let stats = format!("{:?} | {:?}", e.kernel_stats(ka), e.kernel_stats(kb));
        assert_race_clean(&e);
        (log, stats)
    };
    let reference = run(ExecMode::Event);
    assert!(
        reference.0.len() >= 2,
        "scenario must break early at least twice (one per kernel finish)"
    );
    assert_eq!(run(ExecMode::Scan), reference, "scan diverged");
    assert_eq!(
        run(ExecMode::Parallel { shards: 3 }),
        reference,
        "parallel diverged"
    );
}

#[test]
fn preemption_on_epoch_boundary_is_equivalent() {
    // Regression guard: preemption requests issued at run-window boundaries
    // land exactly on the parallel engine's epoch barriers (`run_until`
    // starts a fresh epoch at the earliest pending event). The pure phase
    // must leave preempting SMs untouched and the save/flush timeline
    // byte-identical. Windows of 8192 cycles make several boundaries
    // coincide with the engine's epoch quantum exactly.
    let cfg = four_sm_config();
    let run = |mode: ExecMode| {
        let mut e = Engine::with_seed(cfg.clone(), 13);
        e.set_exec_mode(mode);
        arm_race_check(&mut e);
        e.enable_event_log(1 << 14);
        let k = e.launch_kernel(memory_kernel());
        for sm in 0..cfg.num_sms {
            e.assign_sm(sm, Some(k));
        }
        let mut events = Vec::new();
        for round in 0..12 {
            events.extend(e.run_for(8_192));
            let sm = round % cfg.num_sms;
            if e.sm_resident_count(sm) > 0 && !e.sm_is_preempting(sm) {
                let technique = if round % 3 == 0 {
                    Technique::Switch
                } else {
                    Technique::Drain
                };
                let plan = SmPreemptPlan::uniform(e.sm_resident_indices(sm), technique);
                e.preempt_sm(sm, &plan)
                    .expect("plan covers resident blocks");
            }
            e.assign_sm(sm, Some(k));
        }
        events.extend(e.run_until(e.cycle() + 3_000_000));
        let trace = chrome_trace_json(&e).expect("event log enabled");
        assert_race_clean(&e);
        (events, format!("{:?}", e.kernel_stats(k)), trace)
    };
    let reference = run(ExecMode::Event);
    assert!(
        !reference.1.contains("switch_count: 0"),
        "scenario must exercise preemptions: {}",
        reference.1
    );
    assert_eq!(run(ExecMode::Scan), reference, "scan diverged");
    for shards in [1, 2, 4] {
        assert_eq!(
            run(ExecMode::Parallel { shards }),
            reference,
            "parallel({shards}) diverged"
        );
    }
}

/// Regression: a block that is switched out, resumed, and then preempted
/// again releases its dispatch slot exactly once per residency. Before the
/// checked-decrement fix, a double release would wrap `outstanding` to
/// `u64::MAX` in release builds (and now panics the debug assertion this
/// test would trip).
#[test]
fn repeated_preemption_does_not_underflow_block_accounting() {
    let cfg = four_sm_config();
    let mut e = Engine::with_seed(cfg.clone(), 3);
    let k = e.launch_kernel(compute_kernel());
    for sm in 0..cfg.num_sms {
        e.assign_sm(sm, Some(k));
    }
    // Many short windows, switching every SM out each time: resumed blocks
    // get re-preempted over and over.
    for _ in 0..30 {
        e.run_for(3_000);
        for sm in 0..cfg.num_sms {
            switch_sm(&mut e, sm);
            e.assign_sm(sm, Some(k));
        }
    }
    let mut guard = 0;
    while !e.kernel_stats(k).finished {
        e.run_for(5_000_000);
        guard += 1;
        assert!(guard < 100, "kernel did not finish");
    }
    let s = e.kernel_stats(k);
    assert_eq!(s.completed_tbs, compute_kernel().grid_blocks());
    assert_eq!(
        s.issued_insts, s.completed_insts,
        "switch preemption wastes no instructions"
    );
    assert!(
        s.switch_count > 0,
        "scenario must actually exercise switch-outs"
    );
}
