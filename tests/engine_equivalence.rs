//! Differential determinism tests for the event-driven engine.
//!
//! The engine schedules SM ticks from a binary-heap event calendar; the
//! legacy linear min-scan survives behind `Engine::set_scan_scheduler(true)`
//! as the slow, obviously-correct reference. These tests drive a
//! preemption-heavy multiprogrammed scenario through both schedulers and
//! demand *byte-identical* observable behaviour: the event stream, the final
//! statistics, and the Chrome-trace export. They also pin the regression
//! fixed in this PR's accounting audit: re-preempted (switched-out, resumed,
//! then re-preempted) blocks must not double-release their dispatch slot.

use gpu_sim::trace::chrome_trace_json;
use gpu_sim::{Engine, Event, GpuConfig, KernelDesc, Program, Segment, SmPreemptPlan, Technique};

fn four_sm_config() -> GpuConfig {
    GpuConfig {
        num_sms: 4,
        ..GpuConfig::tiny()
    }
}

fn compute_kernel() -> KernelDesc {
    KernelDesc::builder("eq_compute")
        .grid_blocks(64)
        .threads_per_block(64)
        .regs_per_thread(16)
        .program(Program::new(vec![
            Segment::load(6),
            Segment::compute(600),
            Segment::store(4),
        ]))
        .jitter_pct(0.2)
        .build()
        .expect("valid kernel")
}

fn memory_kernel() -> KernelDesc {
    KernelDesc::builder("eq_memory")
        .grid_blocks(48)
        .threads_per_block(64)
        .regs_per_thread(20)
        .program(Program::new(vec![
            Segment::load(40),
            Segment::compute(80),
            Segment::Barrier,
            Segment::load(30),
            Segment::overwrite(6),
        ]))
        .build()
        .expect("valid kernel")
}

fn switch_sm(e: &mut Engine, sm: usize) {
    if e.sm_resident_count(sm) > 0 && !e.sm_is_preempting(sm) {
        let plan = SmPreemptPlan::uniform(e.sm_resident_indices(sm), Technique::Switch);
        e.preempt_sm(sm, &plan).expect("switch is always legal");
    }
}

/// A preemption-heavy multiprogrammed run: two kernels on a 4-SM split,
/// with SMs 0–1 ping-ponged between them by context-switch preemptions so
/// blocks get switched out, resumed, and re-preempted repeatedly.
fn run_scenario(scan: bool) -> (Vec<Event>, String, String) {
    let cfg = four_sm_config();
    let mut e = Engine::with_seed(cfg.clone(), 11);
    e.set_scan_scheduler(scan);
    e.enable_event_log(1 << 14);
    let ka = e.launch_kernel(compute_kernel());
    let kb = e.launch_kernel(memory_kernel());
    e.assign_sm(0, Some(ka));
    e.assign_sm(1, Some(ka));
    e.assign_sm(2, Some(kb));
    e.assign_sm(3, Some(kb));
    let mut events = Vec::new();
    for round in 0..24 {
        events.extend(e.run_for(5_000));
        match round % 4 {
            1 => {
                for sm in 0..2 {
                    switch_sm(&mut e, sm);
                    e.assign_sm(sm, Some(kb));
                }
            }
            3 => {
                for sm in 0..2 {
                    switch_sm(&mut e, sm);
                    e.assign_sm(sm, Some(ka));
                }
            }
            _ => {}
        }
    }
    events.extend(e.run_until(e.cycle() + 3_000_000));
    let stats = format!(
        "{:?} | {:?} | {:?}",
        e.gpu_stats(),
        e.kernel_stats(ka),
        e.kernel_stats(kb)
    );
    let trace = chrome_trace_json(&e).expect("event log enabled");
    (events, stats, trace)
}

#[test]
fn heap_and_scan_schedulers_are_equivalent() {
    let (ev_heap, stats_heap, trace_heap) = run_scenario(false);
    let (ev_scan, stats_scan, trace_scan) = run_scenario(true);
    assert!(
        !ev_heap.is_empty(),
        "scenario must produce events for the comparison to mean anything"
    );
    assert_eq!(ev_heap, ev_scan, "event streams diverged");
    assert_eq!(stats_heap, stats_scan, "final statistics diverged");
    assert!(
        trace_heap == trace_scan,
        "chrome traces diverged ({} vs {} bytes)",
        trace_heap.len(),
        trace_scan.len()
    );
}

#[test]
fn scheduler_can_be_toggled_mid_run() {
    // Toggling between the calendar and the scan reference at window
    // boundaries (exercising the calendar rebuild) must not change results.
    let cfg = four_sm_config();
    let run = |toggle: bool| {
        let mut e = Engine::with_seed(cfg.clone(), 5);
        let k = e.launch_kernel(compute_kernel());
        for sm in 0..cfg.num_sms {
            e.assign_sm(sm, Some(k));
        }
        let mut events = Vec::new();
        for round in 0..10 {
            if toggle {
                e.set_scan_scheduler(round % 2 == 0);
            }
            events.extend(e.run_for(20_000));
        }
        e.set_scan_scheduler(false);
        while !e.kernel_stats(k).finished {
            events.extend(e.run_for(1_000_000));
        }
        (events, format!("{:?}", e.kernel_stats(k)))
    };
    assert_eq!(run(false), run(true));
}

/// Regression: a block that is switched out, resumed, and then preempted
/// again releases its dispatch slot exactly once per residency. Before the
/// checked-decrement fix, a double release would wrap `outstanding` to
/// `u64::MAX` in release builds (and now panics the debug assertion this
/// test would trip).
#[test]
fn repeated_preemption_does_not_underflow_block_accounting() {
    let cfg = four_sm_config();
    let mut e = Engine::with_seed(cfg.clone(), 3);
    let k = e.launch_kernel(compute_kernel());
    for sm in 0..cfg.num_sms {
        e.assign_sm(sm, Some(k));
    }
    // Many short windows, switching every SM out each time: resumed blocks
    // get re-preempted over and over.
    for _ in 0..30 {
        e.run_for(3_000);
        for sm in 0..cfg.num_sms {
            switch_sm(&mut e, sm);
            e.assign_sm(sm, Some(k));
        }
    }
    let mut guard = 0;
    while !e.kernel_stats(k).finished {
        e.run_for(5_000_000);
        guard += 1;
        assert!(guard < 100, "kernel did not finish");
    }
    let s = e.kernel_stats(k);
    assert_eq!(s.completed_tbs, compute_kernel().grid_blocks());
    assert_eq!(
        s.issued_insts, s.completed_insts,
        "switch preemption wastes no instructions"
    );
    assert!(
        s.switch_count > 0,
        "scenario must actually exercise switch-outs"
    );
}
