//! Property-based tests over the `GpuScheduler` facade and random preemption
//! plans against the engine.

use chimera::partition::PartitionPolicy;
use chimera::policy::Policy;
use chimera::scheduler::GpuScheduler;
use gpu_sim::{Engine, GpuConfig, KernelDesc, Program, Segment, SmPreemptPlan, Technique};
use proptest::prelude::*;

fn small_kernel(name: String, grid: u32, insts: u32, non_idem: bool) -> KernelDesc {
    let mut segs = vec![Segment::load(2), Segment::compute(insts)];
    if non_idem {
        segs.push(Segment::overwrite(2));
    } else {
        segs.push(Segment::store(2));
    }
    let program = idem::instrument(&Program::new(segs));
    KernelDesc::builder(name)
        .grid_blocks(grid)
        .threads_per_block(64)
        .regs_per_thread(12)
        .program(program)
        .jitter_pct(0.1)
        .build()
        .expect("valid kernel")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any mix of processes and kernels runs to completion with intact
    /// memory semantics under the full scheduler stack.
    #[test]
    fn scheduler_completes_arbitrary_mixes(
        jobs in proptest::collection::vec((1u32..40, 50u32..600, any::<bool>()), 1..4),
        policy_ix in 0usize..4,
    ) {
        let policy = Policy::paper_lineup(30.0)[policy_ix];
        let mut gpu = GpuScheduler::builder(GpuConfig::tiny())
            .policy(policy)
            .partition(PartitionPolicy::SmartEven)
            .build();
        let mut procs = Vec::new();
        for (i, &(grid, insts, non_idem)) in jobs.iter().enumerate() {
            let p = gpu.add_process();
            gpu.submit(p, small_kernel(format!("k{i}"), grid, insts, non_idem));
            procs.push(p);
        }
        let mut guard = 0;
        while !gpu.is_idle() {
            gpu.run_for_us(200.0);
            guard += 1;
            prop_assert!(guard < 8_000, "scheduler stalled under {}", policy);
        }
        for (i, &p) in procs.iter().enumerate() {
            prop_assert_eq!(gpu.completed_kernels(p), 1, "job {} under {}", i, policy);
        }
        // Every kernel's functional memory matches the reference execution.
        for &proc in &procs {
            prop_assert!(gpu.useful_insts(proc) > 0);
        }
    }

    /// Random safe preemption plans never corrupt kernel output and always
    /// complete (the engine-level analogue of the correctness storms).
    #[test]
    fn random_safe_plans_preserve_semantics(
        seed in 0u64..500,
        techniques in proptest::collection::vec(0u8..3, 1..12),
    ) {
        let cfg = GpuConfig::tiny();
        let mut e = Engine::with_seed(cfg.clone(), seed);
        let k = e.launch_kernel(small_kernel("prop".into(), 24, 300, true));
        for sm in 0..cfg.num_sms {
            e.assign_sm(sm, Some(k));
        }
        for (round, &t) in techniques.iter().enumerate() {
            e.run_for(2_000 + seed % 997);
            let sm = round % cfg.num_sms;
            if e.sm_is_preempting(sm) || e.sm_resident_count(sm) == 0 {
                continue;
            }
            let snap = e.sm_snapshot(sm);
            let entries: Vec<(u32, Technique)> = snap
                .blocks
                .iter()
                .map(|b| {
                    let tech = match t {
                        0 if !b.past_idem_point => Technique::Flush,
                        1 => Technique::Switch,
                        _ => Technique::Drain,
                    };
                    (b.index, tech)
                })
                .collect();
            let plan = SmPreemptPlan { entries, allow_unsafe_flush: false };
            prop_assert!(e.preempt_sm(sm, &plan).is_ok());
            e.run_for(300_000);
            if !e.sm_is_preempting(sm) {
                e.assign_sm(sm, Some(k));
            }
        }
        let mut guard = 0;
        while !e.kernel_stats(k).finished {
            for sm in 0..cfg.num_sms {
                if !e.sm_is_preempting(sm) && e.sm_assigned(sm).is_none() {
                    e.assign_sm(sm, Some(k));
                }
            }
            e.run_for(2_000_000);
            guard += 1;
            prop_assert!(guard < 4_000, "kernel never finished");
        }
        prop_assert_eq!(e.output_mismatches(k), 0);
    }
}
